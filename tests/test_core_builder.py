"""Tests for the generalised cuckoo placement (2-of-3 insertion)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.builder import EMPTY, place_set
from repro.core.config import BatmapConfig
from repro.core.errors import InsertionFailure
from repro.core.hashing import HashFamily
from repro.utils.bits import next_power_of_two


def make_family(m: int, seed: int = 0) -> HashFamily:
    cfg = BatmapConfig()
    return HashFamily.create(m, shift=cfg.shift_for_universe(m), rng=seed)


class TestPlaceSet:
    def test_every_element_stored_twice(self):
        family = make_family(256)
        elements = np.arange(0, 256, 3)
        r = next_power_of_two(2 * elements.size)
        placement = place_set(elements, family, r)
        assert not placement.failed
        placement.validate(family)
        assert np.array_equal(placement.stored_elements, elements)
        # exactly 2 * |S| occupied slots
        assert int((placement.rows != EMPTY).sum()) == 2 * elements.size

    def test_copies_in_distinct_tables(self):
        family = make_family(128)
        elements = np.arange(40)
        placement = place_set(elements, family, 128)
        for x in elements.tolist():
            tables = {t for t, _ in placement.occurrences(x)}
            assert len(tables) == 2

    def test_empty_set(self):
        family = make_family(64)
        placement = place_set(np.array([], dtype=np.int64), family, 4)
        assert placement.stored_elements.size == 0
        assert not placement.failed

    def test_duplicates_ignored(self):
        family = make_family(64)
        placement = place_set(np.array([5, 5, 5, 9]), family, 8)
        assert np.array_equal(placement.stored_elements, np.array([5, 9]))

    def test_rejects_non_power_of_two_range(self):
        family = make_family(64)
        with pytest.raises(ValueError):
            place_set(np.array([1, 2]), family, 6)

    def test_rejects_out_of_universe_elements(self):
        family = make_family(64)
        with pytest.raises(ValueError):
            place_set(np.array([64]), family, 8)

    def test_rejects_bad_on_failure(self):
        family = make_family(64)
        with pytest.raises(ValueError):
            place_set(np.array([1]), family, 8, on_failure="explode")

    def test_stats_populated(self):
        family = make_family(512)
        elements = np.arange(100)
        placement = place_set(elements, family, 256)
        assert placement.stats.inserted == 100
        assert placement.stats.total_moves >= 200  # at least two moves per element
        assert placement.stats.moves_per_insert >= 2.0

    def test_overfull_table_fails_or_records(self):
        """Placing more than 1.5*r elements cannot succeed (only 3r slots, 2 per element)."""
        family = make_family(512)
        elements = np.arange(100)
        cfg = BatmapConfig(max_loop=20)
        placement = place_set(elements, family, 16, cfg)
        assert placement.failed  # definitely cannot place 100 elements in 48 slots
        placement.validate(family)

    def test_on_failure_raise(self):
        family = make_family(512)
        elements = np.arange(100)
        cfg = BatmapConfig(max_loop=20)
        with pytest.raises(InsertionFailure):
            place_set(elements, family, 16, cfg, on_failure="raise")

    def test_failed_elements_have_no_copies(self):
        family = make_family(1024)
        elements = np.arange(200)
        cfg = BatmapConfig(max_loop=10)
        placement = place_set(elements, family, 64, cfg)
        placement.validate(family)
        for x in placement.failed:
            assert placement.occurrences(x) == []

    def test_stored_plus_failed_covers_input(self):
        family = make_family(1024)
        elements = np.arange(0, 900, 2)
        cfg = BatmapConfig(max_loop=15)
        placement = place_set(elements, family, 512, cfg)
        recovered = set(placement.stored_elements.tolist()) | set(placement.failed)
        assert recovered == set(elements.tolist())

    @given(st.integers(0, 2**31), st.integers(1, 120))
    @settings(max_examples=30, deadline=None)
    def test_property_invariants_hold(self, seed, size):
        rng = np.random.default_rng(seed)
        m = 2048
        family = make_family(m, seed=seed % 17)
        elements = np.sort(rng.choice(m, size=size, replace=False))
        cfg = BatmapConfig()
        r = cfg.range_for_size(size, m)
        placement = place_set(elements, family, r, cfg)
        placement.validate(family)
        stored_and_failed = set(placement.stored_elements.tolist()) | set(placement.failed)
        assert stored_and_failed == set(elements.tolist())

    def test_low_failure_rate_at_standard_range(self):
        """With r >= 2|S| failures should be rare (paper's analysis, Section II-B)."""
        m = 4096
        failures = 0
        total = 0
        for seed in range(10):
            family = make_family(m, seed=seed)
            rng = np.random.default_rng(seed)
            elements = np.sort(rng.choice(m, size=500, replace=False))
            placement = place_set(elements, family, 1024)
            failures += len(placement.failed)
            total += elements.size
        assert failures / total < 0.01
