"""Serve data plane units: wire protocol, result cache, metrics windows."""

from __future__ import annotations

import json

import pytest

from repro.serve.cache import LRUResultCache, MISS
from repro.serve.metrics import SAMPLE_WINDOW, ServerMetrics, percentile
from repro.serve.protocol import (
    CACHEABLE_OPS,
    ERROR_CODES,
    OPS,
    ProtocolError,
    decode_request,
    encode_message,
    error_response,
    normalize_params,
    ok_response,
    query_digest,
)


class TestDecodeRequest:
    def test_accepts_bytes_and_str(self):
        assert decode_request(b'{"op": "ping"}') == {"op": "ping"}
        assert decode_request('{"op": "ping", "id": 3}') == {"op": "ping", "id": 3}

    @pytest.mark.parametrize("line", [b"not json", b"[1, 2]", b'"ping"', b"3"])
    def test_rejects_non_object(self, line):
        with pytest.raises(ProtocolError) as excinfo:
            decode_request(line)
        assert excinfo.value.code == "bad-request"

    def test_unknown_op_is_normalizers_job(self):
        # The envelope decoder must NOT reject a bad op: the server reads
        # the request id between decode and normalize, so the error
        # response can still echo it.
        request = decode_request(b'{"id": 9, "op": "nope"}')
        assert request["id"] == 9
        with pytest.raises(ProtocolError) as excinfo:
            normalize_params(request)
        assert excinfo.value.code == "unknown-op"


class TestNormalizeParams:
    @pytest.mark.parametrize("op", ["ping", "stats", "metrics"])
    def test_nullary_ops_drop_extras(self, op):
        assert normalize_params({"op": op, "junk": 1}) == {"op": op}

    def test_member(self):
        params = normalize_params(
            {"op": "member", "set": 2, "elements": [5, 0, 5]})
        assert params == {"op": "member", "set": 2, "elements": [5, 0, 5]}

    def test_count(self):
        params = normalize_params({"op": "count", "pairs": [[0, 1], [2, 2]]})
        assert params == {"op": "count", "pairs": [[0, 1], [2, 2]]}

    def test_multiway(self):
        params = normalize_params({"op": "multiway", "sets": [3, 1, 2]})
        assert params == {"op": "multiway", "sets": [3, 1, 2]}

    def test_topk(self):
        params = normalize_params({"op": "topk", "set": 0, "k": 4})
        assert params == {"op": "topk", "set": 0, "k": 4}

    @pytest.mark.parametrize("request_dict", [
        {"op": "member", "set": "0", "elements": [1]},
        {"op": "member", "set": 0, "elements": 1},
        {"op": "member", "set": 0, "elements": [1.5]},
        {"op": "member", "set": True, "elements": []},   # bools are not ints
        {"op": "count", "pairs": [[0]]},
        {"op": "count", "pairs": [[0, 1, 2]]},
        {"op": "count", "pairs": "0 1"},
        {"op": "multiway", "sets": [1]},
        {"op": "multiway", "sets": [1, 1]},
        {"op": "topk", "set": 0, "k": 0},
        {"op": "topk", "set": 0, "k": None},
    ])
    def test_bad_params(self, request_dict):
        with pytest.raises(ProtocolError) as excinfo:
            normalize_params(request_dict)
        assert excinfo.value.code == "bad-request"

    @pytest.mark.parametrize("op", [None, 7, "decode", "PING"])
    def test_unknown_op(self, op):
        with pytest.raises(ProtocolError) as excinfo:
            normalize_params({"op": op})
        assert excinfo.value.code == "unknown-op"

    def test_cacheable_ops_are_known(self):
        assert CACHEABLE_OPS <= set(OPS)
        assert "metrics" not in CACHEABLE_OPS   # must reflect live state


class TestQueryDigest:
    def test_identical_requests_share_a_digest(self):
        a = normalize_params({"op": "count", "pairs": [[0, 1]], "id": 1})
        b = normalize_params({"pairs": [[0, 1]], "op": "count", "id": 99})
        assert query_digest(a) == query_digest(b)

    def test_different_params_differ(self):
        a = normalize_params({"op": "count", "pairs": [[0, 1]]})
        b = normalize_params({"op": "count", "pairs": [[1, 0]]})
        assert query_digest(a) != query_digest(b)

    def test_op_is_part_of_the_key(self):
        a = normalize_params({"op": "member", "set": 1, "elements": [2]})
        b = normalize_params({"op": "topk", "set": 1, "k": 2})
        assert query_digest(a) != query_digest(b)


class TestEnvelopes:
    def test_encode_round_trips_one_line(self):
        raw = encode_message(ok_response(5, [1, 2]))
        assert raw.endswith(b"\n") and raw.count(b"\n") == 1
        assert json.loads(raw) == {"id": 5, "ok": True, "result": [1, 2]}

    def test_error_response_shape(self):
        message = error_response(None, "timeout", "too slow")
        assert message == {"id": None, "ok": False,
                           "error": {"code": "timeout", "message": "too slow"}}
        assert "timeout" in ERROR_CODES


class TestLRUResultCache:
    def test_hit_miss_and_eviction_order(self):
        cache = LRUResultCache(2)
        assert cache.get("a") is MISS
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1          # refreshes "a"
        cache.put("c", 3)                   # evicts "b", the LRU entry
        assert cache.get("b") is MISS
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_snapshot_counters(self):
        cache = LRUResultCache(1)
        cache.get("x")
        cache.put("x", 0)
        cache.get("x")
        cache.put("y", 0)                   # evicts "x"
        snap = cache.snapshot()
        assert snap["hits"] == 1
        assert snap["misses"] == 1
        assert snap["evictions"] == 1
        assert snap["entries"] == 1
        assert snap["hit_rate"] == pytest.approx(0.5)

    def test_zero_capacity_disables_caching(self):
        cache = LRUResultCache(0)
        cache.put("a", 1)
        assert cache.get("a") is MISS
        assert cache.snapshot()["entries"] == 0

    def test_put_updates_existing_key(self):
        cache = LRUResultCache(2)
        cache.put("a", 1)
        cache.put("a", 2)
        assert cache.get("a") == 2
        assert cache.snapshot()["evictions"] == 0


class TestServerMetrics:
    def test_percentile_nearest_rank(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 50) == 20.0
        assert percentile(values, 99) == 40.0
        assert percentile([7.0], 50) == 7.0

    def test_request_window_snapshot(self):
        metrics = ServerMetrics()
        for ms in (1, 2, 3, 4):
            metrics.record_request("count", ms / 1000.0)
        metrics.record_request("ping", 0.0005)
        snap = metrics.snapshot()
        assert snap["requests_total"] == 5
        assert snap["requests_by_op"] == {"count": 4, "ping": 1}
        latency = snap["latency_by_op"]["count"]
        assert latency["p50_ms"] == pytest.approx(2.0)
        assert latency["max_ms"] == pytest.approx(4.0)

    def test_errors_batches_and_queue(self):
        metrics = ServerMetrics()
        metrics.record_error("timeout")
        metrics.record_error("timeout")
        metrics.record_batch(3)
        metrics.record_batch(5)
        metrics.observe_queue(2)
        metrics.observe_queue(7)
        metrics.observe_queue(1)
        snap = metrics.snapshot()
        assert snap["errors_by_code"] == {"timeout": 2}
        assert snap["batches"] == 2
        assert snap["batched_requests"] == 8
        assert snap["mean_batch_size"] == pytest.approx(4.0)
        assert snap["max_batch_size"] == 5
        assert snap["queue_high_water"] == 7

    def test_window_is_bounded(self):
        metrics = ServerMetrics()
        for _ in range(SAMPLE_WINDOW + 10):
            metrics.record_request("ping", 0.001)
        snap = metrics.snapshot()
        assert snap["requests_total"] == SAMPLE_WINDOW + 10
        # percentiles still computable over the bounded window
        assert snap["latency_by_op"]["ping"]["p99_ms"] > 0
