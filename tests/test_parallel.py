"""Tests for the CPU throughput model (Fig. 11) and split scaling (Fig. 9)."""

import pytest

from repro.baselines.apriori import AprioriMiner
from repro.datasets.synthetic import generate_fixed_transactions
from repro.gpu.device import XEON_5462
from repro.parallel.cpu import (
    cpu_throughput_series,
    measure_single_core_throughput,
    model_multicore_throughput,
)
from repro.parallel.scaling import (
    ScalingPoint,
    measure_split_scaling,
    merge_part_counts,
    relative_speedups,
)


class TestCpuThroughput:
    def test_single_core_measurement(self):
        point = measure_single_core_throughput(n_words=200_000, repeats=2, rng=0)
        assert point.cores == 1
        assert point.gbytes_per_second > 0
        assert point.seconds > 0
        assert not point.modelled

    def test_model_saturates_at_memory_bandwidth(self):
        single = 2.5
        t8 = model_multicore_throughput(single, 8, device=XEON_5462)
        t4 = model_multicore_throughput(single, 4, device=XEON_5462)
        t1 = model_multicore_throughput(single, 1, device=XEON_5462)
        assert t1 == pytest.approx(single)
        assert t4 <= XEON_5462.memory_bandwidth_gbps
        assert t8 <= XEON_5462.memory_bandwidth_gbps * 0.6 + 1e-9
        # saturation: going from 4 to 8 cores helps much less than 1 -> 2
        assert (t8 - t4) < (model_multicore_throughput(single, 2) - t1)

    def test_series_shape(self):
        series = cpu_throughput_series(core_counts=(1, 2, 4, 8), n_words=100_000, rng=1)
        assert [p.cores for p in series] == [1, 2, 4, 8]
        gbps = [p.gbytes_per_second for p in series]
        assert all(b > 0 for b in gbps)
        assert gbps[-1] >= gbps[0]          # more cores never slower
        assert series[0].modelled is False and series[-1].modelled is True

    def test_validation(self):
        with pytest.raises(ValueError):
            measure_single_core_throughput(n_words=0)
        with pytest.raises(ValueError):
            model_multicore_throughput(0.0, 4)


class TestSplitScaling:
    def _db(self):
        return generate_fixed_transactions(20, 0.25, 240, rng=0)

    def test_points_and_speedups(self):
        db = self._db()
        miner = AprioriMiner(max_size=2)
        # repeats > 1: best-of timing keeps this tiny instance (part times in
        # the hundreds of microseconds) from flaking on scheduler noise
        points = measure_split_scaling(
            lambda t, n, s: miner.mine_pairs(t, n, s), db, min_support=2,
            core_counts=(1, 2, 4), repeats=3)
        assert [p.cores for p in points] == [1, 2, 4]
        assert all(p.seconds > 0 for p in points)
        assert all(len(p.part_seconds) == p.cores for p in points)
        assert all(p.imbalance >= 1.0 for p in points)
        speedups = relative_speedups(points)
        assert speedups[1] == pytest.approx(1.0)
        # simulated parallelism can never exceed the ideal linear speedup by much
        assert speedups[4] <= 4.5

    def test_validation(self):
        db = self._db()
        with pytest.raises(ValueError):
            measure_split_scaling(lambda t, n, s: None, db, min_support=0)
        with pytest.raises(ValueError):
            measure_split_scaling(lambda t, n, s: None, db, 1, core_counts=())
        with pytest.raises(ValueError):
            relative_speedups([])


class TestSerialMergePhase:
    """Regression for the Figure 9 methodology: the serial merge of per-part
    counts is part of the simulated makespan, so splitting can no longer
    produce super-linear "speed-ups"."""

    def _db(self):
        return generate_fixed_transactions(20, 0.25, 240, rng=0)

    def test_seconds_include_measured_merge(self):
        db = self._db()
        miner = AprioriMiner(max_size=2)
        points = measure_split_scaling(
            lambda t, n, s: miner.mine_pairs(t, n, s), db, min_support=2,
            core_counts=(1, 2, 4))
        for p in points:
            assert p.merge_seconds > 0          # dict merge was actually timed
            assert p.seconds == max(p.part_seconds) + p.merge_seconds
            assert p.parallel_seconds == max(p.part_seconds)

    def test_merge_part_counts_dicts(self):
        merged = merge_part_counts([{(0, 1): 2, (1, 2): 1}, {(0, 1): 3}])
        assert merged == {(0, 1): 5, (1, 2): 1}

    def test_merge_part_counts_itemset_results(self):
        db = self._db()
        parts = db.split(2)
        results = [AprioriMiner(max_size=2).mine(p.transactions, p.n_items, 1)
                   for p in parts]
        merged = merge_part_counts(results)
        whole = AprioriMiner(max_size=2).mine(db.transactions, db.n_items, 1)
        # per-part supports sum to the whole-instance supports (min_support=1)
        for itemset, support in whole.itemsets.items():
            assert merged[itemset] == support

    def test_merge_part_counts_rejects_opaque_results(self):
        """A result shape the merge cannot fold must fail loudly — silently
        merging nothing would zero the serial term and bring back the
        super-linear artifact."""
        with pytest.raises(TypeError):
            merge_part_counts([object()])
        with pytest.raises(TypeError):
            merge_part_counts([{(0, 1): 2}, None])

    def test_custom_merge_callable(self):
        db = self._db()
        seen = []

        def merge(results):
            seen.append(len(results))
            return None

        measure_split_scaling(lambda t, n, s: {}, db, min_support=1,
                              core_counts=(1, 3), merge=merge)
        assert seen == [1, 3]

    def test_speedup_capped_by_merge_term(self):
        """Even with impossibly super-linear part shrinkage the merge term
        keeps the simulated speed-up below the core count."""
        points = [
            ScalingPoint(cores=1, seconds=8.0 + 0.1, part_seconds=(8.0,),
                         merge_seconds=0.1),
            # parts 10x faster than linear would allow, but the merge grew:
            ScalingPoint(cores=8, seconds=0.1 + 1.0, part_seconds=(0.1,) * 8,
                         merge_seconds=1.0),
        ]
        speedups = relative_speedups(points)
        assert speedups[8] < 8.0
