"""Tests for the CPU throughput model (Fig. 11) and split scaling (Fig. 9)."""

import pytest

from repro.baselines.apriori import AprioriMiner
from repro.datasets.synthetic import generate_fixed_transactions
from repro.gpu.device import XEON_5462
from repro.parallel.cpu import (
    cpu_throughput_series,
    measure_single_core_throughput,
    model_multicore_throughput,
)
from repro.parallel.scaling import measure_split_scaling, relative_speedups


class TestCpuThroughput:
    def test_single_core_measurement(self):
        point = measure_single_core_throughput(n_words=200_000, repeats=2, rng=0)
        assert point.cores == 1
        assert point.gbytes_per_second > 0
        assert point.seconds > 0
        assert not point.modelled

    def test_model_saturates_at_memory_bandwidth(self):
        single = 2.5
        t8 = model_multicore_throughput(single, 8, device=XEON_5462)
        t4 = model_multicore_throughput(single, 4, device=XEON_5462)
        t1 = model_multicore_throughput(single, 1, device=XEON_5462)
        assert t1 == pytest.approx(single)
        assert t4 <= XEON_5462.memory_bandwidth_gbps
        assert t8 <= XEON_5462.memory_bandwidth_gbps * 0.6 + 1e-9
        # saturation: going from 4 to 8 cores helps much less than 1 -> 2
        assert (t8 - t4) < (model_multicore_throughput(single, 2) - t1)

    def test_series_shape(self):
        series = cpu_throughput_series(core_counts=(1, 2, 4, 8), n_words=100_000, rng=1)
        assert [p.cores for p in series] == [1, 2, 4, 8]
        gbps = [p.gbytes_per_second for p in series]
        assert all(b > 0 for b in gbps)
        assert gbps[-1] >= gbps[0]          # more cores never slower
        assert series[0].modelled is False and series[-1].modelled is True

    def test_validation(self):
        with pytest.raises(ValueError):
            measure_single_core_throughput(n_words=0)
        with pytest.raises(ValueError):
            model_multicore_throughput(0.0, 4)


class TestSplitScaling:
    def _db(self):
        return generate_fixed_transactions(20, 0.25, 240, rng=0)

    def test_points_and_speedups(self):
        db = self._db()
        miner = AprioriMiner(max_size=2)
        points = measure_split_scaling(
            lambda t, n, s: miner.mine_pairs(t, n, s), db, min_support=2,
            core_counts=(1, 2, 4))
        assert [p.cores for p in points] == [1, 2, 4]
        assert all(p.seconds > 0 for p in points)
        assert all(len(p.part_seconds) == p.cores for p in points)
        assert all(p.imbalance >= 1.0 for p in points)
        speedups = relative_speedups(points)
        assert speedups[1] == pytest.approx(1.0)
        # simulated parallelism can never exceed the ideal linear speedup by much
        assert speedups[4] <= 4.5

    def test_validation(self):
        db = self._db()
        with pytest.raises(ValueError):
            measure_split_scaling(lambda t, n, s: None, db, min_support=0)
        with pytest.raises(ValueError):
            measure_split_scaling(lambda t, n, s: None, db, 1, core_counts=())
        with pytest.raises(ValueError):
            relative_speedups([])
