"""Tests for the theory bounds, space models and throughput accounting."""

import numpy as np
import pytest

from repro.analysis.space import (
    MiningMemoryModel,
    batmap_bytes,
    bitmap_bytes,
    collection_bytes,
    information_theoretic_bits,
    sorted_list_bytes,
)
from repro.analysis.theory import (
    expected_moves_bound,
    failure_probability_bound,
    measure_insertion_behaviour,
    recommended_range,
)
from repro.analysis.throughput import (
    compute_throughput,
    pairwise_input_bytes,
    pairwise_input_elements,
)
from repro.core.config import BatmapConfig


class TestTheory:
    def test_failure_probability_decreases_with_range(self):
        p1 = failure_probability_bound(1000, 4096)
        p2 = failure_probability_bound(1000, 16384)
        assert p2 < p1 < 1.0

    def test_failure_probability_vacuous_when_r_too_small(self):
        assert failure_probability_bound(1000, 2000) == 1.0

    def test_expected_moves_bound_finite_when_r_large_enough(self):
        moves = expected_moves_bound(1000, 4096)
        assert np.isfinite(moves)
        assert moves >= 2.0  # at least the two unavoidable placements
        assert expected_moves_bound(1000, 2000) == float("inf")

    def test_expected_moves_bound_dominates_empirical_moves(self):
        """The bound is loose but must sit above the measured move count."""
        exp = measure_insertion_behaviour(500, 8192, n_sets=3, rng=2)
        bound = expected_moves_bound(500, 2048)
        assert bound >= exp.moves_per_insert

    def test_recommended_range(self):
        r = recommended_range(1000, eps=0.5)
        assert r >= 2500
        assert r & (r - 1) == 0
        with pytest.raises(ValueError):
            recommended_range(1000, eps=0)

    def test_validation(self):
        with pytest.raises(ValueError):
            failure_probability_bound(0, 16)
        with pytest.raises(ValueError):
            expected_moves_bound(10, 0)

    def test_empirical_behaviour_matches_theory(self):
        """At r >= 2|S| failures are rare and moves per insert are O(1)."""
        exp = measure_insertion_behaviour(300, 4096, n_sets=5, rng=0)
        assert exp.failure_rate < 0.01
        assert exp.moves_per_insert < 10
        assert exp.elements_inserted == 1500

    def test_empirical_overload_fails_often(self):
        tight = measure_insertion_behaviour(300, 4096, n_sets=3, range_multiplier=1.0, rng=1)
        roomy = measure_insertion_behaviour(300, 4096, n_sets=3, range_multiplier=4.0, rng=1)
        assert tight.failure_rate >= roomy.failure_rate

    def test_measure_validation(self):
        with pytest.raises(ValueError):
            measure_insertion_behaviour(10, 5)


class TestSpaceModels:
    def test_information_theoretic_bits(self):
        assert information_theoretic_bits(0, 100) == 0.0
        assert information_theoretic_bits(100, 100) == 0.0
        mid = information_theoretic_bits(50, 100)
        assert 90 < mid < 100  # log2 C(100,50) ~ 96.3
        with pytest.raises(ValueError):
            information_theoretic_bits(5, 4)

    def test_batmap_space_story_for_sparse_sets(self):
        """For sparse sets the batmap stays within a small constant factor of the
        information-theoretic minimum, while the uncompressed bitmap does not
        (its cost is fixed at m bits regardless of sparsity)."""
        m = 100_000
        size = 200  # 0.2% density, the regime the paper targets
        batmap_bits = 8 * batmap_bytes(size, m)
        bitmap_bits = 8 * bitmap_bytes(m)
        optimal_bits = information_theoretic_bits(size, m)
        assert batmap_bits < 16 * optimal_bits      # small constant factor
        assert batmap_bits < bitmap_bits / 4        # far below the dense bitmap
        assert bitmap_bits > 30 * optimal_bits      # the bitmap is nowhere near optimal

    def test_bitmap_independent_of_set_size(self):
        assert bitmap_bytes(10_000) == 4 * ((10_000 + 31) // 32)

    def test_sorted_list_linear(self):
        assert sorted_list_bytes(100) == 400
        with pytest.raises(ValueError):
            sorted_list_bytes(-1)

    def test_collection_bytes_dispatch(self):
        sizes = [10, 100, 1000]
        m = 10_000
        batmap_total = collection_bytes(sizes, m, "batmap")
        bitmap_total = collection_bytes(sizes, m, "bitmap")
        sorted_total = collection_bytes(sizes, m, "sorted")
        assert sorted_total == 4 * sum(sizes)
        assert bitmap_total == 3 * bitmap_bytes(m)
        assert batmap_total > 0
        with pytest.raises(ValueError):
            collection_bytes(sizes, m, "banana")

    def test_batmap_respects_compression_floor(self):
        cfg = BatmapConfig()
        m = 10_000_000
        assert batmap_bytes(1, m, cfg) == 3 * cfg.min_range(m)


class TestMiningMemoryModel:
    def test_paper_scale_apriori_exceeds_6gb_at_64k_items(self):
        model = MiningMemoryModel(total_items=10_000_000, n_items=64_000, density=0.05)
        assert model.apriori_bytes() > 6 * 2**30
        assert model.fpgrowth_bytes() < 6 * 2**30
        assert model.batmap_bytes() < 6 * 2**30

    def test_apriori_quadratic_others_linear(self):
        small = MiningMemoryModel(10_000_000, 8_000, 0.05)
        large = MiningMemoryModel(10_000_000, 32_000, 0.05)
        apriori_growth = large.apriori_bytes() / small.apriori_bytes()
        fp_growth = large.fpgrowth_bytes() / small.fpgrowth_bytes()
        batmap_growth = large.batmap_bytes() / small.batmap_bytes()
        assert apriori_growth > 8            # ~16x for a 4x increase in n
        assert fp_growth < 2
        assert batmap_growth < 6             # linear-ish in n

    def test_transactions_and_tidlist_lengths(self):
        model = MiningMemoryModel(10_000_000, 4_000, 0.05)
        assert model.n_transactions == 50_000
        assert model.avg_tidlist_length == 2_500

    def test_series_covers_all_methods(self):
        model = MiningMemoryModel(1_000_000, 1_000, 0.05)
        series = model.series([1_000, 2_000, 4_000])
        assert set(series) == {"apriori", "fpgrowth", "gpu_batmap", "bitmap"}
        assert all(len(v) == 3 for v in series.values())
        assert series["apriori"][-1] > series["apriori"][0]

    def test_validation(self):
        with pytest.raises(ValueError):
            MiningMemoryModel(0, 10, 0.05)
        with pytest.raises(ValueError):
            MiningMemoryModel(10, 10, 0.0)


class TestThroughput:
    def test_paper_throughput_computation(self):
        """Reproduce the arithmetic of Section IV's throughput paragraph."""
        report = compute_throughput(n_sets=4000, avg_set_size=2500, seconds=10.87)
        # paper: 4000^2 * 3 * 2^13 bytes = 393 GB, 36.2 GB/s
        assert report.input_bytes == 4000 ** 2 * 3 * 2 ** 13
        assert report.gbytes_per_second == pytest.approx(36.2, rel=0.01)
        # paper: 40e9 elements, 3.68e9 elements per second
        assert report.input_elements == 40 * 10 ** 9
        assert report.elements_per_second == pytest.approx(3.68e9, rel=0.01)
        assert report.fraction_of_peak(159.0) == pytest.approx(36.2 / 159.0, rel=0.01)

    def test_speedup_over_merge_in_paper_range(self):
        gpu = compute_throughput(4000, 2500, 10.87)
        merge_single = compute_throughput(4000, 2500, 40e9 / 2.25e8)  # 2.25e8 elems/s
        ratio = gpu.speedup_over(merge_single)
        assert 13 <= ratio <= 26

    def test_validation(self):
        with pytest.raises(ValueError):
            pairwise_input_bytes(0, 10)
        with pytest.raises(ValueError):
            pairwise_input_elements(10, 0)
        with pytest.raises(ValueError):
            compute_throughput(10, 10, 0)
