"""Unit tests for BatmapConfig."""

import pytest
from hypothesis import given, strategies as st

from repro.core.config import DEFAULT_CONFIG, BatmapConfig
from repro.utils.bits import is_power_of_two


class TestConstruction:
    def test_defaults(self):
        cfg = BatmapConfig()
        assert cfg.num_tables == 3
        assert cfg.copies == 2
        assert cfg.entry_bits == 8
        assert cfg.is_byte_packed

    def test_rejects_multiplier_below_one(self):
        with pytest.raises(ValueError):
            BatmapConfig(range_multiplier=0.5)

    def test_under_provisioned_multiplier_allowed(self):
        # < 2 voids the failure-probability analysis but is legal (the mining
        # pipeline repairs failed insertions exactly).
        assert BatmapConfig(range_multiplier=1.0).range_multiplier == 1.0

    def test_rejects_bad_payload_bits(self):
        with pytest.raises(ValueError):
            BatmapConfig(payload_bits=0)
        with pytest.raises(ValueError):
            BatmapConfig(payload_bits=32)

    def test_rejects_non_positive_max_loop(self):
        with pytest.raises(ValueError):
            BatmapConfig(max_loop=0)

    def test_with_returns_modified_copy(self):
        cfg = BatmapConfig()
        other = cfg.with_(range_multiplier=4.0)
        assert other.range_multiplier == 4.0
        assert cfg.range_multiplier == 2.0


class TestShift:
    def test_small_universe_needs_no_shift(self):
        # universe of 127 values: ids 0..126 fit in 7 bits with NULL reserved
        assert BatmapConfig().shift_for_universe(127) == 0

    def test_larger_universe_shifts(self):
        cfg = BatmapConfig()
        assert cfg.shift_for_universe(128) == 1
        assert cfg.shift_for_universe(10_000_000) > 0

    def test_shift_makes_payload_fit(self):
        cfg = BatmapConfig()
        for m in (1, 100, 127, 128, 255, 1000, 10**6, 10**7):
            s = cfg.shift_for_universe(m)
            assert ((m - 1) >> s) <= (1 << cfg.payload_bits) - 2

    def test_rejects_non_positive_universe(self):
        with pytest.raises(ValueError):
            BatmapConfig().shift_for_universe(0)


class TestRangeForSize:
    def test_power_of_two(self):
        cfg = BatmapConfig()
        for size in (0, 1, 3, 100, 1000):
            assert is_power_of_two(cfg.range_for_size(size, 10_000))

    def test_at_least_multiplier_times_size(self):
        cfg = BatmapConfig()
        for size in (1, 5, 17, 100):
            assert cfg.range_for_size(size, 100_000) >= 2 * size

    def test_respects_compression_floor(self):
        cfg = BatmapConfig()
        m = 10_000_000
        floor = cfg.min_range(m)
        assert cfg.range_for_size(1, m) >= floor
        assert floor == 1 << cfg.shift_for_universe(m)

    def test_empty_set_gets_floor(self):
        cfg = BatmapConfig()
        assert cfg.range_for_size(0, 100) == cfg.min_range(100)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            BatmapConfig().range_for_size(-1, 100)

    @given(st.integers(1, 10**5), st.integers(1, 10**7))
    def test_property_range_validity(self, size, m):
        cfg = DEFAULT_CONFIG
        r = cfg.range_for_size(size, m)
        assert is_power_of_two(r)
        assert r >= cfg.min_range(m)
        assert r >= cfg.range_multiplier * size or r == cfg.min_range(m) or r >= 2 * size


class TestMaxLoop:
    def test_explicit_value_used(self):
        assert BatmapConfig(max_loop=77).effective_max_loop(1 << 20) == 77

    def test_adaptive_grows_with_range(self):
        cfg = BatmapConfig()
        assert cfg.effective_max_loop(1 << 20) >= cfg.effective_max_loop(16)
        assert cfg.effective_max_loop(4) >= 32
