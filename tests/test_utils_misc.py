"""Unit tests for timers, RNG plumbing, memory helpers and validation."""

import numpy as np
import pytest

from repro.utils.memory import human_bytes, sizeof_array
from repro.utils.rng import derive_seed, make_rng
from repro.utils.timer import PhaseTimer, Timer
from repro.utils.validation import (
    require,
    require_in_range,
    require_positive,
    require_power_of_two,
)


class TestTimer:
    def test_context_manager_accumulates(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            pass
        assert t.elapsed >= first >= 0.0

    def test_double_start_raises(self):
        t = Timer()
        t.start()
        with pytest.raises(RuntimeError):
            t.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0


class TestPhaseTimer:
    def test_phases_accumulate(self):
        pt = PhaseTimer()
        with pt.time("pre"):
            pass
        with pt.time("pre"):
            pass
        with pt.time("gpu"):
            pass
        assert set(pt.as_dict()) == {"pre", "gpu"}
        assert pt.total == pytest.approx(pt.get("pre") + pt.get("gpu"))

    def test_add_negative_raises(self):
        with pytest.raises(ValueError):
            PhaseTimer().add("x", -1.0)

    def test_missing_phase_is_zero(self):
        assert PhaseTimer().get("nope") == 0.0


class TestRng:
    def test_int_seed_reproducible(self):
        assert make_rng(3).integers(0, 100, 5).tolist() == make_rng(3).integers(0, 100, 5).tolist()

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert make_rng(g) is g

    def test_derive_seed_in_range(self):
        g = make_rng(0)
        s = derive_seed(g)
        assert 0 <= s < (1 << 63)

    def test_derive_seed_bits_validation(self):
        with pytest.raises(ValueError):
            derive_seed(make_rng(0), bits=0)
        with pytest.raises(ValueError):
            derive_seed(make_rng(0), bits=64)


class TestMemory:
    def test_sizeof_array(self):
        assert sizeof_array(np.zeros(10, dtype=np.uint32)) == 40

    def test_human_bytes(self):
        assert human_bytes(512) == "512.00 B"
        assert human_bytes(3 * 2**20) == "3.00 MiB"
        assert human_bytes(5 * 2**30) == "5.00 GiB"


class TestValidation:
    def test_require(self):
        require(True, "fine")
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")

    def test_require_positive(self):
        require_positive(1, "x")
        with pytest.raises(ValueError):
            require_positive(0, "x")

    def test_require_in_range(self):
        require_in_range(0.5, 0, 1, "p")
        with pytest.raises(ValueError):
            require_in_range(1.5, 0, 1, "p")

    def test_require_power_of_two(self):
        require_power_of_two(8, "r")
        with pytest.raises(ValueError):
            require_power_of_two(6, "r")
