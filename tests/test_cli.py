"""Tests for the command-line interface."""

import io

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.datasets.fimi_io import read_fimi


@pytest.fixture
def fimi_file(tmp_path):
    path = tmp_path / "data.fimi"
    path.write_text("0 1 2\n1 2\n0 2 3\n2 3\n0 1 2 3\n")
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_mine_defaults(self, fimi_file):
        args = build_parser().parse_args(["mine", str(fimi_file)])
        assert args.engine == "batmap"
        assert args.min_support == 2

    def test_rejects_unknown_engine(self, fimi_file):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["mine", str(fimi_file), "--engine", "magic"])


class TestMine:
    @pytest.mark.parametrize("engine", ["batmap", "apriori", "fpgrowth", "eclat"])
    def test_all_engines_run_and_agree(self, fimi_file, engine):
        out = io.StringIO()
        assert main(["mine", str(fimi_file), "--engine", engine, "--min-support", "2"],
                    out=out) == 0
        text = out.getvalue()
        assert "frequent pairs" in text
        # pairs (1,2) and (0,2) both have support 3 in the fixture
        assert "(1, 2)  support=3" in text
        assert "(0, 2)  support=3" in text

    def test_top_limits_output(self, fimi_file):
        out = io.StringIO()
        main(["mine", str(fimi_file), "--min-support", "1", "--top", "2"], out=out)
        pair_lines = [line for line in out.getvalue().splitlines() if "support=" in line]
        assert len(pair_lines) == 2

    def test_max_transactions(self, fimi_file):
        out = io.StringIO()
        main(["mine", str(fimi_file), "--max-transactions", "2", "--engine", "fpgrowth"],
             out=out)
        assert "loaded 2 transactions" in out.getvalue()


class TestComputeFlags:
    def test_mine_compute_defaults(self, fimi_file):
        args = build_parser().parse_args(["mine", str(fimi_file)])
        assert args.compute == "device"
        assert args.workers is None

    def test_mine_rejects_unknown_compute(self, fimi_file):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["mine", str(fimi_file), "--compute", "quantum"])

    def test_mine_parallel_falls_back_on_small_input(self, fimi_file):
        out = io.StringIO()
        assert main(["mine", str(fimi_file), "--compute", "parallel",
                     "--workers", "2", "--min-support", "2"], out=out) == 0
        text = out.getvalue()
        assert "count backend: batch (parallel fell back" in text
        assert "(1, 2)  support=3" in text
        assert "(0, 2)  support=3" in text

    def test_mine_host_backend(self, fimi_file):
        out = io.StringIO()
        assert main(["mine", str(fimi_file), "--compute", "host",
                     "--min-support", "2"], out=out) == 0
        text = out.getvalue()
        assert "count backend: batch" in text
        assert "(wall clock)" in text

    def test_mine_backends_agree(self, fimi_file):
        results = {}
        for compute in ("device", "host", "parallel"):
            out = io.StringIO()
            main(["mine", str(fimi_file), "--compute", compute,
                  "--min-support", "1"], out=out)
            results[compute] = [line for line in out.getvalue().splitlines()
                                if "support=" in line]
        assert results["device"] == results["host"] == results["parallel"]

    def test_intersect_parallel_falls_back(self, tmp_path):
        rng = np.random.default_rng(1)
        a = rng.choice(2000, 300, replace=False)
        b = rng.choice(2000, 500, replace=False)
        pa = tmp_path / "a.txt"
        pb = tmp_path / "b.txt"
        pa.write_text(" ".join(str(x) for x in a))
        pb.write_text(" ".join(str(x) for x in b))
        out = io.StringIO()
        assert main(["intersect", str(pa), str(pb), "--compute", "parallel",
                     "--workers", "2"], out=out) == 0
        text = out.getvalue()
        assert "count backend: batch (parallel fell back" in text
        exact = len(set(a.tolist()) & set(b.tolist()))
        assert f"(batmap): {exact}" in text
        assert f"(merge) : {exact}" in text


class TestGenerate:
    @pytest.mark.parametrize("kind,extra", [
        ("density", ["--items", "30", "--density", "0.1", "--total-items", "500"]),
        ("quest", ["--items", "30", "--transactions", "40"]),
        ("webdocs", ["--items", "200", "--transactions", "30"]),
    ])
    def test_generates_readable_fimi(self, tmp_path, kind, extra):
        out_path = tmp_path / f"{kind}.fimi"
        out = io.StringIO()
        assert main(["generate", str(out_path), "--kind", kind, "--seed", "1", *extra],
                    out=out) == 0
        db = read_fimi(out_path)
        assert db.n_transactions > 0
        assert "wrote" in out.getvalue()

    def test_roundtrip_minable(self, tmp_path):
        out_path = tmp_path / "gen.fimi"
        main(["generate", str(out_path), "--kind", "density",
              "--items", "20", "--density", "0.2", "--total-items", "400"], out=io.StringIO())
        out = io.StringIO()
        assert main(["mine", str(out_path), "--engine", "fpgrowth"], out=out) == 0


class TestIntersect:
    def _write_sets(self, tmp_path, a, b):
        pa = tmp_path / "a.txt"
        pb = tmp_path / "b.txt"
        pa.write_text(" ".join(str(x) for x in a))
        pb.write_text("\n".join(str(x) for x in b))
        return pa, pb

    def test_intersection_counts_agree(self, tmp_path):
        rng = np.random.default_rng(0)
        a = rng.choice(2000, 300, replace=False)
        b = rng.choice(2000, 500, replace=False)
        pa, pb = self._write_sets(tmp_path, a, b)
        out = io.StringIO()
        assert main(["intersect", str(pa), str(pb)], out=out) == 0
        text = out.getvalue()
        exact = len(set(a.tolist()) & set(b.tolist()))
        assert f"(merge) : {exact}" in text
        assert f"(batmap): {exact}" in text

    def test_empty_set(self, tmp_path):
        pa, pb = self._write_sets(tmp_path, [], [1, 2, 3])
        out = io.StringIO()
        assert main(["intersect", str(pa), str(pb)], out=out) == 0
        assert "intersection size: 0" in out.getvalue()

    def test_explicit_universe(self, tmp_path):
        pa, pb = self._write_sets(tmp_path, [1, 5, 9], [5, 9, 11])
        out = io.StringIO()
        main(["intersect", str(pa), str(pb), "--universe", "64"], out=out)
        assert "universe = 64" in out.getvalue()
