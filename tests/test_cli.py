"""Tests for the command-line interface."""

import io

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.datasets.fimi_io import read_fimi


@pytest.fixture
def fimi_file(tmp_path):
    path = tmp_path / "data.fimi"
    path.write_text("0 1 2\n1 2\n0 2 3\n2 3\n0 1 2 3\n")
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_mine_defaults(self, fimi_file):
        args = build_parser().parse_args(["mine", str(fimi_file)])
        assert args.engine == "batmap"
        assert args.min_support == 2

    def test_rejects_unknown_engine(self, fimi_file):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["mine", str(fimi_file), "--engine", "magic"])


class TestMine:
    @pytest.mark.parametrize("engine", ["batmap", "apriori", "fpgrowth", "eclat"])
    def test_all_engines_run_and_agree(self, fimi_file, engine):
        out = io.StringIO()
        assert main(["mine", str(fimi_file), "--engine", engine, "--min-support", "2"],
                    out=out) == 0
        text = out.getvalue()
        assert "frequent pairs" in text
        # pairs (1,2) and (0,2) both have support 3 in the fixture
        assert "(1, 2)  support=3" in text
        assert "(0, 2)  support=3" in text

    def test_top_limits_output(self, fimi_file):
        out = io.StringIO()
        main(["mine", str(fimi_file), "--min-support", "1", "--top", "2"], out=out)
        pair_lines = [line for line in out.getvalue().splitlines() if "support=" in line]
        assert len(pair_lines) == 2

    def test_max_transactions(self, fimi_file):
        out = io.StringIO()
        main(["mine", str(fimi_file), "--max-transactions", "2", "--engine", "fpgrowth"],
             out=out)
        assert "loaded 2 transactions" in out.getvalue()


class TestComputeFlags:
    def test_mine_compute_defaults(self, fimi_file):
        args = build_parser().parse_args(["mine", str(fimi_file)])
        assert args.compute == "device"
        assert args.workers is None

    def test_mine_rejects_unknown_compute(self, fimi_file):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["mine", str(fimi_file), "--compute", "quantum"])

    def test_mine_parallel_falls_back_on_small_input(self, fimi_file):
        out = io.StringIO()
        assert main(["mine", str(fimi_file), "--compute", "parallel",
                     "--workers", "2", "--min-support", "2"], out=out) == 0
        text = out.getvalue()
        assert "count backend: batch (parallel fell back" in text
        assert "(1, 2)  support=3" in text
        assert "(0, 2)  support=3" in text

    def test_mine_host_backend(self, fimi_file):
        out = io.StringIO()
        assert main(["mine", str(fimi_file), "--compute", "host",
                     "--min-support", "2"], out=out) == 0
        text = out.getvalue()
        assert "count backend: batch" in text
        assert "(wall clock)" in text

    def test_mine_backends_agree(self, fimi_file):
        results = {}
        for compute in ("device", "host", "parallel"):
            out = io.StringIO()
            main(["mine", str(fimi_file), "--compute", compute,
                  "--min-support", "1"], out=out)
            results[compute] = [line for line in out.getvalue().splitlines()
                                if "support=" in line]
        assert results["device"] == results["host"] == results["parallel"]

    def test_intersect_parallel_falls_back(self, tmp_path):
        rng = np.random.default_rng(1)
        a = rng.choice(2000, 300, replace=False)
        b = rng.choice(2000, 500, replace=False)
        pa = tmp_path / "a.txt"
        pb = tmp_path / "b.txt"
        pa.write_text(" ".join(str(x) for x in a))
        pb.write_text(" ".join(str(x) for x in b))
        out = io.StringIO()
        assert main(["intersect", str(pa), str(pb), "--compute", "parallel",
                     "--workers", "2"], out=out) == 0
        text = out.getvalue()
        assert "count backend: batch (parallel fell back" in text
        exact = len(set(a.tolist()) & set(b.tolist()))
        assert f"(batmap): {exact}" in text
        assert f"(merge) : {exact}" in text


class TestMineItemsets:
    def test_max_size_defaults_to_pairs(self, fimi_file):
        args = build_parser().parse_args(["mine", str(fimi_file)])
        assert args.max_size == 2

    def test_mine_itemsets_auto_compute(self, fimi_file):
        out = io.StringIO()
        assert main(["mine", str(fimi_file), "--max-size", "4",
                     "--compute", "auto", "--min-support", "2"], out=out) == 0
        text = out.getvalue()
        assert "frequent itemsets up to size" in text
        assert "extension level(s)" in text
        # fixture: {0, 1, 2} and {0, 2, 3} both appear twice
        assert "(0, 1, 2)  support=2" in text
        assert "(0, 2, 3)  support=2" in text

    def test_mine_itemsets_matches_scan_engine(self, fimi_file):
        from repro.datasets.fimi_io import read_fimi as _read
        from repro.mining.itemsets import BatmapItemsetMiner
        from repro.mining.pair_mining import BatmapPairMiner

        db = _read(fimi_file)
        reference = BatmapItemsetMiner(
            BatmapPairMiner(compute="host"), max_size=4, level_compute="scan",
        ).mine(db, min_support=2, rng=0)
        out = io.StringIO()
        main(["mine", str(fimi_file), "--max-size", "4", "--compute", "host",
              "--min-support", "2"], out=out)
        n_expected = len(reference.itemsets)
        assert f"{n_expected} frequent itemsets" in out.getvalue()

    def test_max_size_requires_batmap_engine(self, fimi_file):
        out = io.StringIO()
        assert main(["mine", str(fimi_file), "--max-size", "3",
                     "--engine", "apriori"], out=out) == 2
        assert "requires the batmap engine" in out.getvalue()

    def test_invalid_max_size(self, fimi_file):
        out = io.StringIO()
        assert main(["mine", str(fimi_file), "--max-size", "0"], out=out) == 2

    def test_max_size_one_restricts_to_singletons(self, fimi_file):
        out = io.StringIO()
        assert main(["mine", str(fimi_file), "--max-size", "1",
                     "--compute", "host", "--min-support", "2"], out=out) == 0
        text = out.getvalue()
        assert "up to size 1" in text
        # no pair (two-element) itemsets may be printed
        assert "size 2" not in text
        assert "(2,)  support=5" in text  # item 2 appears in all 5 transactions

    def test_mine_auto_compute_pairs(self, fimi_file):
        out = io.StringIO()
        assert main(["mine", str(fimi_file), "--compute", "auto",
                     "--min-support", "2"], out=out) == 0
        text = out.getvalue()
        assert "count backend: batch" in text
        assert "(1, 2)  support=3" in text


class TestIntersectMultiway:
    def _write(self, tmp_path, name, values):
        path = tmp_path / name
        path.write_text(" ".join(str(x) for x in values))
        return path

    def test_three_sets_route_multiway(self, tmp_path):
        rng = np.random.default_rng(5)
        sets = [rng.choice(1000, size, replace=False) for size in (200, 300, 400)]
        paths = [self._write(tmp_path, f"s{i}.txt", s) for i, s in enumerate(sets)]
        out = io.StringIO()
        assert main(["intersect", *map(str, paths)], out=out) == 0
        text = out.getvalue()
        exact = len(set(sets[0].tolist()) & set(sets[1].tolist()) & set(sets[2].tolist()))
        assert "batched multiway probes" in text
        assert f"(batmap): {exact}" in text
        assert f"(merge) : {exact}" in text

    def test_multiway_flag_with_two_sets(self, tmp_path):
        pa = self._write(tmp_path, "a.txt", [1, 2, 3, 10])
        pb = self._write(tmp_path, "b.txt", [2, 3, 11])
        out = io.StringIO()
        assert main(["intersect", str(pa), str(pb), "--multiway"], out=out) == 0
        text = out.getvalue()
        assert "batched multiway probes" in text
        assert "(batmap): 2" in text

    def test_intersect_auto_compute(self, tmp_path):
        rng = np.random.default_rng(9)
        a = rng.choice(2000, 400, replace=False)
        b = rng.choice(2000, 350, replace=False)
        pa = self._write(tmp_path, "a.txt", a)
        pb = self._write(tmp_path, "b.txt", b)
        out = io.StringIO()
        assert main(["intersect", str(pa), str(pb), "--compute", "auto"],
                    out=out) == 0
        text = out.getvalue()
        exact = len(set(a.tolist()) & set(b.tolist()))
        assert "count backend: host" in text
        assert f"(batmap): {exact}" in text

    def test_empty_set_multiway(self, tmp_path):
        pa = self._write(tmp_path, "a.txt", [1, 2])
        pb = self._write(tmp_path, "b.txt", [])
        pc = self._write(tmp_path, "c.txt", [2, 3])
        out = io.StringIO()
        assert main(["intersect", str(pa), str(pb), str(pc)], out=out) == 0
        assert "intersection size: 0" in out.getvalue()


class TestGenerate:
    @pytest.mark.parametrize("kind,extra", [
        ("density", ["--items", "30", "--density", "0.1", "--total-items", "500"]),
        ("quest", ["--items", "30", "--transactions", "40"]),
        ("webdocs", ["--items", "200", "--transactions", "30"]),
    ])
    def test_generates_readable_fimi(self, tmp_path, kind, extra):
        out_path = tmp_path / f"{kind}.fimi"
        out = io.StringIO()
        assert main(["generate", str(out_path), "--kind", kind, "--seed", "1", *extra],
                    out=out) == 0
        db = read_fimi(out_path)
        assert db.n_transactions > 0
        assert "wrote" in out.getvalue()

    def test_roundtrip_minable(self, tmp_path):
        out_path = tmp_path / "gen.fimi"
        main(["generate", str(out_path), "--kind", "density",
              "--items", "20", "--density", "0.2", "--total-items", "400"], out=io.StringIO())
        out = io.StringIO()
        assert main(["mine", str(out_path), "--engine", "fpgrowth"], out=out) == 0


class TestIntersect:
    def _write_sets(self, tmp_path, a, b):
        pa = tmp_path / "a.txt"
        pb = tmp_path / "b.txt"
        pa.write_text(" ".join(str(x) for x in a))
        pb.write_text("\n".join(str(x) for x in b))
        return pa, pb

    def test_intersection_counts_agree(self, tmp_path):
        rng = np.random.default_rng(0)
        a = rng.choice(2000, 300, replace=False)
        b = rng.choice(2000, 500, replace=False)
        pa, pb = self._write_sets(tmp_path, a, b)
        out = io.StringIO()
        assert main(["intersect", str(pa), str(pb)], out=out) == 0
        text = out.getvalue()
        exact = len(set(a.tolist()) & set(b.tolist()))
        assert f"(merge) : {exact}" in text
        assert f"(batmap): {exact}" in text

    def test_empty_set(self, tmp_path):
        pa, pb = self._write_sets(tmp_path, [], [1, 2, 3])
        out = io.StringIO()
        assert main(["intersect", str(pa), str(pb)], out=out) == 0
        assert "intersection size: 0" in out.getvalue()

    def test_explicit_universe(self, tmp_path):
        pa, pb = self._write_sets(tmp_path, [1, 5, 9], [5, 9, 11])
        out = io.StringIO()
        main(["intersect", str(pa), str(pb), "--universe", "64"], out=out)
        assert "universe = 64" in out.getvalue()
