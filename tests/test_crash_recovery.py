"""Fault-injection property test: every kill site leaves a sane artifact.

The durability contract of the v3 lifecycle (``docs/operations.md``): a
crash at *any* write/rename/fsync boundary of any mutation leaves the
artifact attachable at exactly the pre- or post-mutation generation, with
counts bit-identical to the corresponding committed state, and with nothing
left behind that ``repro repair`` cannot sweep.

The test runs randomized append/delete/compact sequences.  For each step it
first replays the mutation cleanly under :class:`faultpoints.recording` to
enumerate every kill site ``(name, occurrence)``, then replays the step
once per site with that site armed, asserting the contract after each
injected crash.  A final assertion proves the sequences exercised **every**
registered faultpoint — extending the registry without extending the
mutations here fails loudly.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.integrity import repair_spill, verify_spill
from repro.core.sharded import ShardedCollection
from repro.parallel.sharded import ShardedPairCounter
from repro.utils import faultpoints as fp

SRC = str(Path(__file__).resolve().parents[1] / "src")


@pytest.fixture(autouse=True)
def _clean_state():
    fp.disarm()
    yield
    fp.disarm()


def _state(spill_dir):
    """(generation, counts) of the committed artifact — the contract oracle."""
    collection = ShardedCollection.from_spill(spill_dir)
    counts = ShardedPairCounter(collection, compute="batch").counts()
    return collection.generation, counts


def _apply(collection, op):
    kind, payload = op
    if kind == "append":
        collection.append(payload["sets"], universe_size=payload.get("universe"))
    elif kind == "delete":
        collection.delete(payload)
    else:
        collection.compact(full=True)


def _build_base(root, rng):
    """Base artifact with large sets: a later tiny append lowers r0."""
    universe = 256
    sets = [np.sort(rng.choice(universe, size=40, replace=False))
            for _ in range(8)]
    return ShardedCollection.build(
        sets, universe, root, memory_budget=60_000,
        family_kind="lazy", family_capacity=1024, rng=int(rng.integers(1 << 30)))


def _random_sequence(rng):
    """Randomized mutations that collectively hit every registered faultpoint."""
    tiny = [np.sort(rng.choice(64, size=int(rng.integers(2, 4)), replace=False))]
    medium = [np.sort(rng.choice(400, size=int(rng.integers(10, 20)),
                                 replace=False))
              for _ in range(int(rng.integers(2, 4)))]
    sequence = [
        ("append", {"sets": tiny}),                       # r0 undercut: reinterleave
        ("append", {"sets": medium, "universe": 512}),    # universe growth
        ("delete", sorted(int(i) for i in
                          rng.choice(9, size=3, replace=False))),
        ("compact", None),
    ]
    if rng.integers(2):
        sequence.insert(3, ("delete", [0]))
    return sequence


@pytest.mark.parametrize("seed", [11, 29])
def test_every_kill_site_leaves_pre_or_post_state(tmp_path, seed):
    rng = np.random.default_rng(seed)
    canonical = tmp_path / "canonical"
    _build_base(canonical, rng)
    covered: set = set()

    for step, op in enumerate(_random_sequence(rng)):
        pre_gen, pre_counts = _state(canonical)

        # Clean replay: enumerate the step's kill sites and its post state.
        scratch = tmp_path / f"step{step}"
        shutil.copytree(canonical, scratch)
        with fp.recording() as rec:
            _apply(ShardedCollection.from_spill(scratch), op)
        sites = rec.sites()
        assert sites, f"step {step} ({op[0]}) hit no faultpoints"
        covered.update(name for name, _ in sites)
        post_gen, post_counts = _state(scratch)
        assert post_gen == pre_gen + 1

        for name, hit in sites:
            work = tmp_path / "work"
            shutil.copytree(canonical, work)
            collection = ShardedCollection.from_spill(work)
            with fp.armed(name, hit=hit):
                with pytest.raises(fp.InjectedFault):
                    _apply(collection, op)

            # Crashed artifact attaches at exactly pre or post generation,
            # with counts bit-identical to that committed state.
            gen, counts = _state(work)
            assert gen in (pre_gen, post_gen), \
                f"step {step} kill at {name}#{hit}: generation {gen}"
            expected = pre_counts if gen == pre_gen else post_counts
            np.testing.assert_array_equal(counts, expected)

            # Repair sweeps every leftover; the artifact verifies clean and
            # still serves the same generation and counts.
            result = repair_spill(work)
            assert result.report.ok, \
                f"step {step} kill at {name}#{hit}: {result.report.render()}"
            gen_after, counts_after = _state(work)
            assert gen_after == gen
            np.testing.assert_array_equal(counts_after, expected)
            shutil.rmtree(work)

        # Advance the canonical state with the clean replay.
        shutil.rmtree(canonical)
        scratch.rename(canonical)

    assert covered == set(fp.KNOWN_FAULTPOINTS), \
        f"sequences missed faultpoints: {set(fp.KNOWN_FAULTPOINTS) - covered}"


def test_post_append_counts_match_a_from_scratch_build(tmp_path):
    # Bit-identity across the lifecycle: appending through the atomic
    # commit path equals building the final dataset from scratch with the
    # artifact's own family.
    from repro.core.collection import BatmapCollection
    from repro.core.config import DEFAULT_CONFIG

    rng = np.random.default_rng(3)
    universe = 128
    base = [np.sort(rng.choice(universe, size=10, replace=False))
            for _ in range(6)]
    delta = [np.sort(rng.choice(universe, size=12, replace=False))
             for _ in range(3)]
    collection = ShardedCollection.build(
        base, universe, tmp_path / "spill", memory_budget=40_000, rng=9)
    collection.append(delta)
    reloaded = ShardedCollection.from_spill(tmp_path / "spill")
    counts = ShardedPairCounter(reloaded, compute="batch").counts()
    reference = BatmapCollection.build(
        base + delta, universe,
        config=DEFAULT_CONFIG.with_(payload_bits=reloaded.payload_bits),
        family=reloaded.family)
    np.testing.assert_array_equal(
        counts, reference.count_all_pairs(compute="batch"))


def test_hard_exit_kill_is_recoverable_out_of_process(tmp_path):
    # The CLI smoke surface: REPRO_FAULTPOINT hard-exits a real subprocess
    # mid-commit (kill -9 semantics — no Python cleanup runs), and the
    # artifact still attaches at the pre-mutation generation.
    rng = np.random.default_rng(17)
    spill = tmp_path / "spill"
    sets = [np.sort(rng.choice(96, size=9, replace=False)) for _ in range(6)]
    ShardedCollection.build(sets, 96, spill, memory_budget=40_000, rng=2)
    pre_gen, pre_counts = _state(spill)

    env = dict(os.environ, PYTHONPATH=SRC,
               REPRO_FAULTPOINT="commit.manifest",
               REPRO_FAULTPOINT_MODE="exit")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "delete", str(spill),
         "--sets", "1", "3"],
        env=env, capture_output=True, text=True, timeout=120)
    assert proc.returncode == fp.FAULT_EXIT_CODE, proc.stderr

    gen, counts = _state(spill)
    assert gen == pre_gen
    np.testing.assert_array_equal(counts, pre_counts)
    report = verify_spill(spill)
    assert report.ok  # leftovers are warnings, never damage
    repair_spill(spill)
    assert verify_spill(spill).warnings == []
