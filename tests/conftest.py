"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import BatmapConfig
from repro.core.hashing import HashFamily


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_universe() -> int:
    return 512


@pytest.fixture
def config() -> BatmapConfig:
    return BatmapConfig(seed=7)


@pytest.fixture
def family(small_universe: int, config: BatmapConfig) -> HashFamily:
    shift = config.shift_for_universe(small_universe)
    return HashFamily.create(small_universe, shift=shift, rng=3)


def random_sets(rng: np.random.Generator, n_sets: int, universe: int,
                min_size: int = 0, max_size: int | None = None) -> list[np.ndarray]:
    """Draw ``n_sets`` random subsets of ``{0..universe-1}``."""
    max_size = max_size or max(1, universe // 2)
    out = []
    for _ in range(n_sets):
        size = int(rng.integers(min_size, max_size + 1))
        size = min(size, universe)
        out.append(np.sort(rng.choice(universe, size=size, replace=False)))
    return out
