"""Unit tests for the atomic-commit protocol and verify/repair backends.

:mod:`repro.core.integrity` is the durability kernel every spill mutation
routes through.  These tests exercise it in isolation — staging hygiene,
the commit point, garbage sweeping, stale-staging reclamation and the
verify/repair report surface — while ``tests/test_crash_recovery.py``
proves the end-to-end crash guarantees over real mutations.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.core.errors import IntegrityError
from repro.core.integrity import (
    DIGEST_ALGORITHM,
    MANIFEST_NAME,
    SHARD_ARRAY_NAMES,
    STAGING_PREFIX,
    AtomicCommit,
    file_digest,
    repair_spill,
    sweep_stale_staging,
    verify_spill,
)
from repro.core.sharded import ShardedCollection


@pytest.fixture
def spill(tmp_path):
    """A small committed v3 artifact with two tombstones."""
    rng = np.random.default_rng(5)
    sets = [np.sort(rng.choice(64, size=8, replace=False)) for _ in range(8)]
    collection = ShardedCollection.build(
        sets, 64, tmp_path / "spill", memory_budget=30_000, rng=3)
    collection.delete([1, 4])
    return tmp_path / "spill"


class TestFileDigest:
    def test_stable_and_chunking_invariant(self, tmp_path):
        payload = os.urandom((1 << 20) + 17)  # crosses the 1 MiB chunk size
        path = tmp_path / "blob"
        path.write_bytes(payload)
        first = file_digest(path)
        assert first == file_digest(path)
        assert len(first) == 32  # 16-byte blake2b, hex
        path.write_bytes(payload[:-1] + bytes([payload[-1] ^ 1]))
        assert file_digest(path) != first
        assert DIGEST_ALGORITHM == "blake2b-128"


class TestAtomicCommit:
    def test_commit_publishes_files_manifest_and_sweeps_garbage(self, tmp_path):
        spill = tmp_path / "spill"
        spill.mkdir()
        old = spill / "tombstones_0001.npy"
        old.write_bytes(b"old generation")
        commit = AtomicCommit(spill)
        commit.stage("payload.npy").write_bytes(b"new data")
        staged_dir = commit.stage("shard_0001")
        staged_dir.mkdir()
        (staged_dir / "words.npy").write_bytes(b"words")
        commit.add_garbage(old)
        commit.commit({"version": 3, "generation": 2})
        assert (spill / "payload.npy").read_bytes() == b"new data"
        assert (spill / "shard_0001" / "words.npy").read_bytes() == b"words"
        assert json.loads((spill / MANIFEST_NAME).read_text())["generation"] == 2
        assert not old.exists()
        assert not commit.staging.exists()
        assert commit.committed

    def test_abort_leaves_the_live_artifact_untouched(self, tmp_path):
        spill = tmp_path / "spill"
        spill.mkdir()
        (spill / MANIFEST_NAME).write_text('{"version": 3}')
        live = spill / "live.npy"
        live.write_bytes(b"live")
        commit = AtomicCommit(spill)
        commit.stage("next.npy").write_bytes(b"uncommitted")
        commit.add_garbage(live)
        commit.abort()
        assert live.read_bytes() == b"live"
        assert not (spill / "next.npy").exists()
        assert not commit.staging.exists()
        assert (spill / MANIFEST_NAME).read_text() == '{"version": 3}'

    def test_stage_rejects_reserved_and_duplicate_names(self, tmp_path):
        commit = AtomicCommit(tmp_path / "spill")
        with pytest.raises(ValueError, match="reserved"):
            commit.stage(MANIFEST_NAME)
        with pytest.raises(ValueError, match="reserved"):
            commit.stage(f"{STAGING_PREFIX}evil")
        with pytest.raises(ValueError, match="reserved"):
            commit.stage("nested/name")
        commit.stage("fresh.npy")
        with pytest.raises(ValueError, match="already staged"):
            commit.stage("fresh.npy")
        commit.abort()

    def test_taken_sees_both_live_and_staged_names(self, tmp_path):
        spill = tmp_path / "spill"
        spill.mkdir()
        (spill / "shard_0000").mkdir()
        commit = AtomicCommit(spill)
        assert commit.taken("shard_0000")
        assert not commit.taken("shard_0001")
        commit.stage("shard_0001")
        assert commit.taken("shard_0001")
        commit.abort()

    def test_commit_twice_raises(self, tmp_path):
        commit = AtomicCommit(tmp_path / "spill")
        commit.commit({"version": 3})
        with pytest.raises(RuntimeError, match="twice"):
            commit.commit({"version": 3})

    def test_crashed_attempt_dir_target_is_replaced(self, tmp_path):
        # A crashed earlier attempt can leave a directory under a name the
        # retry re-stages (generations only advance on successful commits).
        spill = tmp_path / "spill"
        spill.mkdir()
        stale = spill / "compact_0002_0000"
        stale.mkdir()
        (stale / "words.npy").write_bytes(b"stale")
        commit = AtomicCommit(spill)
        staged = commit.stage("compact_0002_0000")
        staged.mkdir()
        (staged / "words.npy").write_bytes(b"fresh")
        commit.commit({"version": 3})
        assert (spill / "compact_0002_0000" / "words.npy").read_bytes() == b"fresh"


class TestStaleStagingSweep:
    def test_dead_pid_is_swept_and_live_pid_is_kept(self, tmp_path):
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        dead = tmp_path / f"{STAGING_PREFIX}{proc.pid}-cafe0000"
        dead.mkdir()
        (dead / "partial.npy").write_bytes(b"x")
        live = tmp_path / f"{STAGING_PREFIX}{os.getpid()}-beef0000"
        live.mkdir()
        removed = sweep_stale_staging(tmp_path)
        assert removed == [dead]
        assert not dead.exists()
        assert live.exists()


class TestVerify:
    def test_clean_artifact_verifies_clean(self, spill):
        report = verify_spill(spill)
        assert report.ok
        assert report.version == 3
        assert report.generation == 1
        assert report.files_checked > 0
        assert report.bytes_hashed > 0
        assert report.errors == [] and report.warnings == []
        assert "clean" in report.render()
        assert report.to_dict()["ok"] is True

    def test_missing_manifest_is_damage(self, tmp_path):
        report = verify_spill(tmp_path)
        assert not report.ok
        assert report.errors[0].code == "manifest-missing"
        assert "DAMAGED" in report.render()

    def test_garbage_is_warned_not_errored(self, spill):
        (spill / f"{STAGING_PREFIX}99999999-dead0000").mkdir()
        (spill / "tombstones_0099.npy").write_bytes(b"orphan")
        (spill / "compact_0099_0000").mkdir()
        report = verify_spill(spill)
        assert report.ok
        codes = sorted(f.code for f in report.warnings)
        assert codes == ["orphan", "orphan", "staging-leftover"]

    def test_checksum_mismatch_is_damage(self, spill):
        manifest = json.loads((spill / MANIFEST_NAME).read_text())
        shard_dir = spill / manifest["shards"][0]["dir"]
        with open(shard_dir / "words.npy", "r+b") as handle:
            handle.seek(-1, os.SEEK_END)
            last = handle.read(1)
            handle.seek(-1, os.SEEK_END)
            handle.write(bytes([last[0] ^ 0xFF]))
        report = verify_spill(spill)
        assert not report.ok
        assert any(f.code == "checksum-mismatch" for f in report.errors)

    def test_verify_covers_every_shard_array(self, spill):
        manifest = json.loads((spill / MANIFEST_NAME).read_text())
        for entry in manifest["shards"]:
            assert set(entry["files"]) == set(SHARD_ARRAY_NAMES)


class TestRepair:
    def test_repair_sweeps_all_garbage(self, spill):
        (spill / f"{STAGING_PREFIX}{os.getpid()}-feed0000").mkdir()
        (spill / "family_0099.npz").write_bytes(b"orphan")
        result = repair_spill(spill)
        assert len(result.actions) == 2
        assert result.report.ok
        assert not (spill / "family_0099.npz").exists()
        follow_up = repair_spill(spill)
        assert follow_up.actions == []

    def test_repair_without_manifest_raises_integrity_error(self, tmp_path):
        with pytest.raises(IntegrityError, match="rebuilt"):
            repair_spill(tmp_path)

    def test_repair_keeps_everything_the_manifest_references(self, spill):
        before = sorted(p.name for p in spill.iterdir())
        result = repair_spill(spill)
        assert result.actions == []
        assert sorted(p.name for p in spill.iterdir()) == before
        reloaded = ShardedCollection.from_spill(spill)
        assert reloaded.generation == 1
