"""Docs stay truthful: links resolve and quoted thresholds match the code.

Runs `tools/check_doc_links.py` in-process (the CI docs job runs the same
script standalone), and pins the planner threshold values quoted in the
README's decision tables to the constants in `repro.core.plan` — the
tables say "the code wins"; this test makes sure they never need to.
"""

from __future__ import annotations

import importlib.util
import re
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

_spec = importlib.util.spec_from_file_location(
    "check_doc_links", REPO_ROOT / "tools" / "check_doc_links.py")
check_doc_links = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_doc_links)


def test_intra_repo_markdown_links_resolve():
    errors = check_doc_links.check_all()
    assert not errors, "dead markdown links:\n" + "\n".join(errors)


def test_docs_pages_exist_and_are_linked_from_readme():
    readme = (REPO_ROOT / "README.md").read_text()
    for page in ("architecture.md", "serving.md", "file-formats.md",
                 "operations.md"):
        assert (REPO_ROOT / "docs" / page).exists()
        assert f"docs/{page}" in readme, f"README does not link docs/{page}"


def _quoted_value(text: str, name: str) -> int:
    """The integer the README quotes for one named planner constant."""
    matches = re.findall(rf"`{name}`\s*=\s*(\d+)", text)
    assert matches, f"README does not quote a value for {name}"
    values = {int(v) for v in matches}
    assert len(values) == 1, f"README quotes conflicting values for {name}"
    return values.pop()


def test_readme_decision_tables_match_planner_constants():
    from repro.core import plan
    from repro.parallel import executor

    readme = (REPO_ROOT / "README.md").read_text()
    expected = {
        "HOST_MAX_PAIRS": plan.HOST_MAX_PAIRS,
        "WIDE_WORDS_PER_SET": plan.WIDE_WORDS_PER_SET,
        "PARALLEL_MIN_SETS": executor.PARALLEL_MIN_SETS,
        "BULK_BUILD_MIN_ELEMENTS": plan.BULK_BUILD_MIN_ELEMENTS,
        "PARALLEL_BUILD_MIN_SETS": plan.PARALLEL_BUILD_MIN_SETS,
        "PARALLEL_BUILD_MIN_ELEMENTS": plan.PARALLEL_BUILD_MIN_ELEMENTS,
    }
    for name, value in expected.items():
        assert _quoted_value(readme, name) == value, (
            f"README quotes a stale value for {name}; the planner says {value}")


def test_experiments_entries_linked_from_readme_exist():
    """Every E-number the README references has a heading in EXPERIMENTS.md."""
    readme = (REPO_ROOT / "README.md").read_text()
    experiments = (REPO_ROOT / "EXPERIMENTS.md").read_text()
    referenced = set(re.findall(r"\[E(\d+)\]\(EXPERIMENTS\.md#", readme))
    assert referenced, "README no longer cross-links EXPERIMENTS.md entries"
    for number in sorted(referenced, key=int):
        assert re.search(rf"^## E{number} ", experiments, re.MULTILINE), (
            f"README references E{number} but EXPERIMENTS.md has no such entry")
