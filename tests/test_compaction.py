"""LSM-style compaction: planning policy, bit-identity, planner awareness.

Compaction is pure data movement — a spilled row's bytes depend only on
(set, family, r, config), never on which shard holds them — so the central
claim here is that *every* count is bit-identical before and after a merge,
including after tombstone purges and a disk re-attach.  The planning tests
pin the size-tier policy and the budget splitting; the planner tests pin
the shard-fanout gate that makes many-shard collections prefer the
parallel counting pool.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.compaction import (
    COMPACTION_MIN_RUN,
    compact,
    plan_compaction,
)
from repro.core.plan import (
    SHARD_FANOUT_MIN,
    WIDE_WORDS_PER_SET,
    PlanFeatures,
    plan_build,
    plan_counts,
)
from repro.core.sharded import (
    SHARD_BUDGET_DIVISOR,
    ShardedCollection,
    fixed_resident_bytes,
)
from tests.conftest import random_sets

UNIVERSE = 2048


def make_sets(n, seed=5, min_size=1, max_size=300):
    rng = np.random.default_rng(seed)
    return random_sets(rng, n, UNIVERSE, min_size=min_size, max_size=max_size)


def budget_for(n_sets, extra=200_000):
    return fixed_resident_bytes(UNIVERSE, n_sets) + extra


class TestPlanCompaction:
    def test_short_same_tier_run_is_left_alone(self):
        assert plan_compaction([1000] * (COMPACTION_MIN_RUN - 1)) == []

    def test_tiered_run_at_threshold_merges(self):
        tasks = plan_compaction([1000] * COMPACTION_MIN_RUN)
        assert [(t.start, t.stop) for t in tasks] == [(0, COMPACTION_MIN_RUN)]
        assert "tier" in tasks[0].reason

    def test_only_long_runs_merge_in_mixed_tiers(self):
        # tiers: 9,9,9,9 | 12 | 6,6,6,6,6 — the lone tier-12 shard is kept.
        nbytes = [1000] * 4 + [5000] + [64] * 5
        tasks = plan_compaction(nbytes)
        assert [(t.start, t.stop) for t in tasks] == [(0, 4), (5, 10)]

    def test_min_run_is_tunable(self):
        tasks = plan_compaction([1000, 1000], min_run=2)
        assert [(t.start, t.stop) for t in tasks] == [(0, 2)]
        with pytest.raises(ValueError):
            plan_compaction([1000], min_run=0)

    def test_full_merges_everything(self):
        tasks = plan_compaction([100, 5000, 64], full=True)
        assert [(t.start, t.stop) for t in tasks] == [(0, 3)]
        assert tasks[0].reason == "full compaction requested"

    def test_budget_splits_merge_groups(self):
        # shard budget 250 B: greedy groups of two 100 B shards each.
        tasks = plan_compaction([100] * 6, full=True,
                                memory_budget=250 * SHARD_BUDGET_DIVISOR)
        assert [(t.start, t.stop) for t in tasks] == [(0, 2), (2, 4), (4, 6)]

    def test_oversized_shard_gets_singleton_group(self):
        # A shard already over the budget cannot shrink — it still gets its
        # own group (where a full compaction may purge its tombstones).
        tasks = plan_compaction([1000, 50, 50], full=True,
                                memory_budget=100 * SHARD_BUDGET_DIVISOR)
        assert [(t.start, t.stop) for t in tasks] == [(0, 1), (1, 3)]
        assert tasks[0].n_shards == 1


class TestCompactIntegration:
    def test_full_compaction_is_bit_identical(self, tmp_path):
        sets = make_sets(24)
        sharded = ShardedCollection.build(
            sets, UNIVERSE, tmp_path / "spill", rng=7,
            memory_budget=budget_for(24), max_sets_per_shard=3)
        assert sharded.n_shards == 8
        reference = sharded.count_all_pairs()
        sharded.compact(full=True)
        assert sharded.generation == 1
        assert sharded.n_shards < 8
        np.testing.assert_array_equal(sharded.count_all_pairs(), reference)
        reattached = ShardedCollection.from_spill(tmp_path / "spill")
        assert reattached.generation == 1
        np.testing.assert_array_equal(reattached.count_all_pairs(), reference)

    def test_tiered_compaction_merges_equal_shards(self, tmp_path):
        # Same-size sets pack to same-size shards → one size tier → the
        # steady-state tiered policy (no ``full``) folds the run.
        sets = make_sets(18, seed=2, min_size=50, max_size=50)
        sharded = ShardedCollection.build(
            sets, UNIVERSE, tmp_path / "spill", rng=1,
            memory_budget=budget_for(18), max_sets_per_shard=3)
        assert sharded.n_shards == 6
        reference = sharded.count_all_pairs()
        sharded.compact()
        assert sharded.generation == 1
        assert sharded.n_shards < 6
        np.testing.assert_array_equal(sharded.count_all_pairs(), reference)

    def test_compaction_purges_tombstones(self, tmp_path):
        sets = make_sets(20, seed=3)
        sharded = ShardedCollection.build(
            sets, UNIVERSE, tmp_path / "spill", rng=4,
            memory_budget=budget_for(20), max_sets_per_shard=4)
        sharded.delete([1, 5, 17])
        live_counts = sharded.count_all_pairs()
        assert sharded.generation == 1
        sharded.compact(full=True)
        assert sharded.generation == 2
        assert sharded.tombstones.size == 0
        # A full purge leaves no tombstone file at all — neither the legacy
        # fixed name nor any v3 generational one.
        assert not list((tmp_path / "spill").glob("tombstones*.npy"))
        assert sharded.n_sets == 17
        assert sharded.n_physical_sets == 17
        np.testing.assert_array_equal(sharded.count_all_pairs(), live_counts)
        reattached = ShardedCollection.from_spill(tmp_path / "spill")
        assert reattached.tombstones.size == 0
        np.testing.assert_array_equal(reattached.count_all_pairs(), live_counts)

    def test_delta_shards_fold_into_base(self, tmp_path):
        sharded = ShardedCollection.build(
            make_sets(12, seed=6), UNIVERSE, tmp_path / "spill", rng=9,
            memory_budget=budget_for(12), max_sets_per_shard=4)
        for seed in (20, 21, 22):
            sharded.append(make_sets(2, seed=seed))
        assert any(s.kind == "delta" for s in sharded.shards)
        reference = sharded.count_all_pairs()
        sharded.compact(full=True)
        assert all(s.kind == "base" for s in sharded.shards)
        np.testing.assert_array_equal(sharded.count_all_pairs(), reference)

    def test_tiered_noop_keeps_generation(self, tmp_path):
        sets = make_sets(9, seed=8)
        sharded = ShardedCollection.build(
            sets, UNIVERSE, tmp_path / "spill", rng=2,
            memory_budget=budget_for(9), max_sets_per_shard=3)
        assert sharded.n_shards < COMPACTION_MIN_RUN + 1
        generation = sharded.generation
        n_shards = sharded.n_shards
        sharded.compact()  # nothing to merge, nothing to purge
        assert sharded.generation == generation
        assert sharded.n_shards == n_shards

    def test_consumed_shard_directories_are_removed(self, tmp_path):
        sets = make_sets(16, seed=12)
        sharded = ShardedCollection.build(
            sets, UNIVERSE, tmp_path / "spill", rng=5,
            memory_budget=budget_for(16), max_sets_per_shard=2)
        old_dirs = [s.directory for s in sharded.shards]
        sharded.compact(full=True)
        for directory in old_dirs:
            assert not directory.exists()
        for shard in sharded.shards:
            assert shard.directory.exists()

    def test_module_level_compact_on_empty_collection_rejected(self, tmp_path):
        sets = make_sets(4, seed=1)
        sharded = ShardedCollection.build(
            sets, UNIVERSE, tmp_path / "spill", rng=1,
            memory_budget=budget_for(4))
        sharded.shards = []
        with pytest.raises(ValueError, match="empty"):
            compact(sharded)


class TestPlannerShardFanout:
    def features(self, n_shards, words_per_set=8, n_sets=512):
        return PlanFeatures(n_sets=n_sets, total_words=n_sets * words_per_set,
                            r0=8, byte_entries=True, n_shards=n_shards)

    def test_shard_fanout_selects_parallel(self):
        plan = plan_counts(self.features(SHARD_FANOUT_MIN + 2), workers=4)
        assert plan.backend == "parallel"
        assert "shard-pair" in plan.reason

    def test_fanout_overrides_wide_class_gate(self):
        # Wide classes normally keep counting serial (memory-bound SWAR),
        # but shard-pair rectangles are attach-latency-bound: fanout wins.
        wide = self.features(SHARD_FANOUT_MIN, words_per_set=WIDE_WORDS_PER_SET)
        plan = plan_counts(wide, workers=4)
        assert plan.backend == "parallel"
        assert "shard" in plan.reason

    def test_below_fanout_wide_class_stays_serial(self):
        wide = self.features(SHARD_FANOUT_MIN - 1,
                             words_per_set=WIDE_WORDS_PER_SET)
        plan = plan_counts(wide, workers=4)
        assert plan.backend == "batch"
        assert "wide-class" in plan.reason

    def test_plan_build_recommends_compaction_past_fanout(self):
        plan = plan_build(1024, 200_000, workers=4,
                          n_existing_shards=SHARD_FANOUT_MIN + 2)
        assert "compaction recommended" in plan.reason

    def test_plan_build_quiet_below_fanout(self):
        plan = plan_build(1024, 200_000, workers=4, n_existing_shards=2)
        assert "compaction" not in plan.reason
