"""Corruption matrix over the frozen v1/v2 fixtures (and a fresh v3 build).

For every corruption the contract is two-sided:

1. ``repro verify`` flags it — :func:`verify_spill` reports at least one
   error with the expected code.
2. Attach never serves silently wrong data — ``from_spill`` plus a full
   count either raises :class:`~repro.core.errors.SpillFormatError`, or the
   counts are bit-identical to the frozen expectation (metadata-only damage
   that cannot corrupt results).

Checksumless v1/v2 artifacts cannot detect damage to array *bodies* — that
gap is exactly why manifest v3 exists — so the body-flip cell runs against
a fresh v3 build and asserts the checksum closes it.
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path

import numpy as np
import pytest

from repro.core.errors import DatasetError, SpillFormatError
from repro.core.integrity import verify_spill
from repro.core.sharded import ShardedCollection
from repro.parallel.sharded import ShardedPairCounter

FIXTURES = Path(__file__).parent / "fixtures"


def _expected(version: int) -> np.ndarray:
    """Frozen live-set count matrix of the untouched fixture."""
    return np.load(FIXTURES / f"spill_v{version}_expected_counts.npy")


def _count_all(spill: Path) -> np.ndarray:
    collection = ShardedCollection.from_spill(spill)
    for s in range(collection.n_shards):
        collection.attach(s)
    return ShardedPairCounter(collection, compute="batch").counts()


def _flip_byte(path: Path, offset: int) -> None:
    with open(path, "r+b") as handle:
        handle.seek(offset, os.SEEK_END if offset < 0 else os.SEEK_SET)
        byte = handle.read(1)
        handle.seek(-1, os.SEEK_CUR)
        handle.write(bytes([byte[0] ^ 0xFF]))


def _edit_manifest(spill: Path, mutate) -> None:
    manifest = json.loads((spill / "manifest.json").read_text())
    mutate(manifest)
    (spill / "manifest.json").write_text(json.dumps(manifest))


# (cell name, corruption, expected verify error code) — applied to both
# frozen fixtures.  Every corruption must also fail the attach-or-identical
# oracle below.
def _truncate_shard(spill: Path) -> None:
    words = spill / "shard_0000" / "words.npy"
    words.write_bytes(words.read_bytes()[: words.stat().st_size // 2])


def _flip_header(spill: Path) -> None:
    _flip_byte(spill / "shard_0000" / "words.npy", 1)  # inside the npy magic


def _drop_shard_file(spill: Path) -> None:
    (spill / "shard_0001" / "offsets.npy").unlink()


def _garbage_extents(spill: Path) -> None:
    def mutate(manifest):
        manifest["shards"][0]["lo"] = 3
    _edit_manifest(spill, mutate)


def _garbage_n_sets(spill: Path) -> None:
    _edit_manifest(spill, lambda m: m.update(n_sets=999))


CELLS = [
    ("truncated-shard", _truncate_shard, "shard-file-unreadable"),
    ("bit-flipped-header", _flip_header, "shard-file-unreadable"),
    ("missing-shard-file", _drop_shard_file, "shard-file-missing"),
    ("garbage-shard-extents", _garbage_extents, "manifest-field"),
    ("garbage-n-sets", _garbage_n_sets, "manifest-field"),
]


@pytest.fixture
def frozen(request, tmp_path):
    version = request.param
    target = tmp_path / f"spill_v{version}"
    shutil.copytree(FIXTURES / f"spill_v{version}", target)
    return version, target


@pytest.mark.parametrize("frozen", [1, 2], indirect=True)
@pytest.mark.parametrize("name,corrupt,code", CELLS,
                         ids=[c[0] for c in CELLS])
def test_matrix_verify_flags_and_attach_is_never_silently_wrong(
        frozen, name, corrupt, code):
    version, spill = frozen
    corrupt(spill)

    report = verify_spill(spill)
    assert not report.ok, f"{name}: verify reported clean"
    assert any(f.code == code for f in report.errors), \
        f"{name}: expected {code}, got {[f.code for f in report.errors]}"

    try:
        counts = _count_all(spill)
    except DatasetError:
        return  # refusing to attach/serve is always acceptable
    expected = _expected(version)
    assert counts.shape == expected.shape
    np.testing.assert_array_equal(counts, expected)


@pytest.mark.parametrize("frozen", [2], indirect=True)
def test_missing_tombstones_refuses_to_resurrect(frozen):
    _version, spill = frozen
    (spill / "tombstones.npy").unlink()
    report = verify_spill(spill)
    assert any(f.code == "tombstones-missing" for f in report.errors)
    with pytest.raises(SpillFormatError, match="tombstone"):
        ShardedCollection.from_spill(spill)


@pytest.mark.parametrize("frozen", [2], indirect=True)
def test_tombstone_count_mismatch_is_rejected(frozen):
    _version, spill = frozen
    np.save(spill / "tombstones.npy", np.array([2], dtype=np.int64))
    report = verify_spill(spill)
    assert any(f.code == "tombstones-mismatch" for f in report.errors)
    with pytest.raises(SpillFormatError, match="tombstone"):
        ShardedCollection.from_spill(spill)


@pytest.mark.parametrize("frozen", [1, 2], indirect=True)
def test_checksumless_versions_warn_about_the_gap(frozen):
    _version, spill = frozen
    report = verify_spill(spill)
    assert report.ok
    assert any(f.code == "no-checksums" for f in report.warnings)


def test_v3_checksum_catches_a_body_flip(tmp_path):
    # The cell v1/v2 cannot catch: damage inside an array body, past the
    # npy header, loads fine and would count wrong.  v3 digests flag it.
    rng = np.random.default_rng(31)
    sets = [np.sort(rng.choice(80, size=9, replace=False)) for _ in range(6)]
    spill = tmp_path / "spill"
    ShardedCollection.build(sets, 80, spill, memory_budget=40_000, rng=4)
    manifest = json.loads((spill / "manifest.json").read_text())
    assert manifest["version"] == 3
    _flip_byte(spill / manifest["shards"][0]["dir"] / "words.npy", -1)
    report = verify_spill(spill)
    assert not report.ok
    assert any(f.code == "checksum-mismatch" for f in report.errors)


def test_frozen_v2_fixture_still_counts_exactly(tmp_path):
    # Baseline for the matrix: the untouched fixture is healthy.
    spill = tmp_path / "spill_v2"
    shutil.copytree(FIXTURES / "spill_v2", spill)
    assert verify_spill(spill).ok
    np.testing.assert_array_equal(_count_all(spill), _expected(2))
