"""Benchmark artifact records and the delta report script."""

from __future__ import annotations

import json

from benchmarks.bench_delta import delta_line, load_artifacts
from benchmarks.bench_delta import main as delta_main
from benchmarks.harness import BenchArtifact, git_sha, scale_knobs


class TestBenchArtifact:
    def test_payload_fields(self):
        artifact = BenchArtifact("speed_test", wall_seconds=2.0)
        artifact.add("speedup", 12.5)
        payload = artifact.payload()
        assert payload["name"] == "speed_test"
        assert payload["wall_seconds"] == 2.0
        assert payload["speedup"] == 12.5
        # no declared item count -> no fabricated throughput
        assert "throughput_items_per_second" not in payload
        assert isinstance(payload["scale"], dict)
        assert "total_items" in payload["scale"]
        assert payload["git_sha"]  # "unknown" at worst, never empty

    def test_throughput_from_declared_processed_items(self):
        artifact = BenchArtifact("tp", wall_seconds=2.0)
        artifact.add("total_items_processed", 1000)
        assert artifact.payload()["throughput_items_per_second"] == 500.0

    def test_write_creates_named_json(self, tmp_path):
        path = BenchArtifact("fig9", wall_seconds=1.0).write(tmp_path)
        assert path == tmp_path / "BENCH_fig9.json"
        assert json.loads(path.read_text())["name"] == "fig9"

    def test_scale_knobs_include_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_CUSTOM_KNOB", "7")
        assert scale_knobs()["REPRO_BENCH_CUSTOM_KNOB"] == "7"

    def test_git_sha_prefers_ci_env(self, monkeypatch):
        monkeypatch.setenv("GITHUB_SHA", "cafe1234")
        assert git_sha() == "cafe1234"


class TestBenchDelta:
    def write(self, directory, name, wall, scale=None):
        directory.mkdir(exist_ok=True)
        (directory / f"BENCH_{name}.json").write_text(json.dumps({
            "name": name,
            "wall_seconds": wall,
            "scale": scale or {"total_items": 1000},
        }))

    def test_delta_against_previous(self, tmp_path):
        self.write(tmp_path / "cur", "a", 1.2)
        self.write(tmp_path / "prev", "a", 1.0)
        current = load_artifacts(tmp_path / "cur")
        previous = load_artifacts(tmp_path / "prev")
        line = delta_line("BENCH_a", current["BENCH_a"], previous["BENCH_a"])
        assert "+20.0%" in line

    def test_no_previous_run(self, tmp_path):
        self.write(tmp_path / "cur", "a", 1.2)
        current = load_artifacts(tmp_path / "cur")
        assert "no previous run" in delta_line("BENCH_a", current["BENCH_a"], None)

    def test_scale_mismatch_not_compared(self):
        line = delta_line("BENCH_a", {"wall_seconds": 1.0, "scale": {"x": 1}},
                          {"wall_seconds": 9.0, "scale": {"x": 2}})
        assert "not comparable" in line

    def test_main_never_fails_on_reporting(self, tmp_path, capsys):
        self.write(tmp_path / "cur", "a", 1.0)
        assert delta_main([str(tmp_path / "cur")]) == 0
        assert delta_main([str(tmp_path / "cur"), str(tmp_path / "missing")]) == 0
        assert delta_main([str(tmp_path / "nothing")]) == 0
        out = capsys.readouterr().out
        assert "BENCH_a" in out
