"""Tests for the multiprocess pair-counting executor (repro.parallel.executor)."""

from __future__ import annotations

import os
from concurrent.futures.process import BrokenProcessPool

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.parallel.executor as executor_module
from repro.core.collection import BatmapCollection
from repro.parallel.executor import (
    MAX_AUTO_WORKERS,
    PARALLEL_MIN_SETS,
    SHM_PREFIX,
    ParallelPairCounter,
    SharedDeviceBuffer,
    measure_executor_scaling,
    recommended_backend,
    resolve_worker_count,
)
from repro.parallel.scaling import relative_speedups
from tests.conftest import random_sets


def shm_residue() -> list[str]:
    """Executor-owned segments currently visible in /dev/shm."""
    try:
        return [f for f in os.listdir("/dev/shm") if f.startswith(SHM_PREFIX)]
    except FileNotFoundError:  # non-Linux platform without /dev/shm
        return []


@pytest.fixture(scope="module")
def coll() -> BatmapCollection:
    rng = np.random.default_rng(7)
    m = 1500
    sets = [np.sort(rng.choice(m, size=int(rng.integers(0, 180)), replace=False))
            for _ in range(30)]
    return BatmapCollection.build(sets, m, rng=3)


class TestBitIdentity:
    """compute="parallel" must be bit-identical to the serial batch engine."""

    def test_all_pairs(self, coll):
        with ParallelPairCounter(coll, workers=2, tile_size=8) as counter:
            assert np.array_equal(counter.counts_sorted(),
                                  coll.batch_counter().counts_sorted())
            assert np.array_equal(counter.count_all_pairs(), coll.count_all_pairs())

    def test_pairs_list(self, coll):
        pairs = [(0, 29), (4, 4), (17, 3), (2, 25), (29, 0), (13, 13)]
        with ParallelPairCounter(coll, workers=2) as counter:
            got = counter.count_pairs(pairs)
        assert got.tolist() == coll.batch_counter().count_pairs(pairs).tolist()

    def test_cross_rectangle(self, coll):
        rows, cols = [0, 5, 9, 22, 28], [1, 2, 3, 17]
        with ParallelPairCounter(coll, workers=2, tile_size=2) as counter:
            got = counter.count_cross(rows, cols)
        assert np.array_equal(got, coll.batch_counter().count_cross(rows, cols))

    def test_count_pair_and_empty_inputs(self, coll):
        with ParallelPairCounter(coll, workers=2) as counter:
            assert counter.count_pair(3, 11) == coll.count_pair(3, 11)
            assert counter.count_pairs(np.zeros((0, 2), dtype=np.int64)).size == 0
            assert counter.count_cross([], [1, 2]).shape == (0, 2)

    def test_rejects_bad_pairs_shape(self, coll):
        with ParallelPairCounter(coll, workers=2) as counter:
            with pytest.raises(ValueError):
                counter.count_pairs(np.array([1, 2, 3]))

    @given(st.integers(0, 2**31), st.integers(2, 6))
    @settings(max_examples=5, deadline=None)
    def test_property_matches_batch_engine(self, seed, n_sets):
        rng = np.random.default_rng(seed)
        m = 600
        sets = [np.sort(rng.choice(m, size=int(rng.integers(0, 120)), replace=False))
                for _ in range(n_sets)]
        collection = BatmapCollection.build(sets, m, rng=seed % 13)
        with ParallelPairCounter(collection, workers=2, tile_size=2) as counter:
            assert np.array_equal(counter.count_all_pairs(),
                                  collection.count_all_pairs())


class TestLifecycle:
    """Context-manager semantics and shared-memory hygiene."""

    def test_segment_removed_on_clean_exit(self, coll):
        with ParallelPairCounter(coll, workers=2) as counter:
            name = counter._shared.name
            assert name.startswith(SHM_PREFIX)
            assert name in shm_residue()
        assert name not in shm_residue()

    def test_close_is_idempotent(self, coll):
        counter = ParallelPairCounter(coll, workers=2).start()
        counter.close()
        counter.close()
        assert shm_residue() == []

    def test_error_inside_body_unlinks(self, coll):
        """An exception raised while the pool is live must not leak /dev/shm."""
        with pytest.raises(IndexError):
            with ParallelPairCounter(coll, workers=2) as counter:
                counter.count_pairs([[0, 10**9]])
        assert shm_residue() == []

    def test_failed_worker_unlinks(self, coll):
        """Regression: killed workers must not leave shared-memory residue."""
        with pytest.raises(BrokenProcessPool):
            with ParallelPairCounter(coll, workers=2, tile_size=4) as counter:
                counter.count_pair(0, 1)  # force the pool to actually spawn
                processes = list(counter._pool._processes.values())
                assert processes
                for process in processes:
                    process.kill()
                counter.counts_sorted()
        assert shm_residue() == []

    def test_shared_buffer_unlink_idempotent(self):
        buffer = SharedDeviceBuffer(np.arange(64, dtype=np.uint32))
        assert buffer.name.startswith(SHM_PREFIX)
        buffer.unlink()
        buffer.unlink()
        assert shm_residue() == []

    def test_start_twice_reuses_pool(self, coll):
        with ParallelPairCounter(coll, workers=2) as counter:
            pool = counter._pool
            counter.start()
            assert counter._pool is pool


class TestWorkerSelection:
    def test_auto_worker_count_bounds(self):
        auto = resolve_worker_count(None)
        assert 1 <= auto <= MAX_AUTO_WORKERS

    def test_explicit_worker_count(self):
        assert resolve_worker_count(3) == 3

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            resolve_worker_count(0)
        with pytest.raises(ValueError):
            resolve_worker_count(-2)


class TestFallback:
    def test_small_collection_recommends_batch(self, coll):
        assert len(coll) < PARALLEL_MIN_SETS
        assert recommended_backend(coll, workers=4) == "batch"

    def test_single_worker_recommends_batch(self, coll):
        assert recommended_backend(coll, workers=1) == "batch"

    def test_large_collection_recommends_parallel(self, rng):
        sets = random_sets(rng, PARALLEL_MIN_SETS, 256, max_size=10)
        collection = BatmapCollection.build(sets, 256, rng=0)
        assert recommended_backend(collection, workers=2) == "parallel"

    def test_collection_parallel_kwarg_falls_back(self, coll):
        """Small input: parallel=True silently uses the batch engine."""
        assert np.array_equal(coll.count_all_pairs(parallel=True, workers=2),
                              coll.count_all_pairs())

    def test_collection_parallel_kwarg_forced(self, coll, monkeypatch):
        """With the floor lowered the executor path really engages."""
        monkeypatch.setattr(executor_module, "PARALLEL_MIN_SETS", 1)
        assert np.array_equal(coll.count_all_pairs(parallel=2),
                              coll.batch_counter().count_all_pairs())


class TestMeasuredScaling:
    def test_points_and_speedups(self, coll):
        points = measure_executor_scaling(coll, worker_counts=(1, 2), tile_size=8)
        assert [p.cores for p in points] == [1, 2]
        assert all(p.seconds > 0 for p in points)
        speedups = relative_speedups(points)
        assert speedups[1] == pytest.approx(1.0)

    def test_validation(self, coll):
        with pytest.raises(ValueError):
            measure_executor_scaling(coll, worker_counts=())
        with pytest.raises(ValueError):
            measure_executor_scaling(coll, worker_counts=(1,), repeats=0)
