"""Tests of the SWAR word-comparison primitives against a scalar reference."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.swar import (
    count_matches,
    count_matches_folded,
    count_matches_per_word,
    match_bits,
)


def scalar_reference_count(x_bytes: np.ndarray, y_bytes: np.ndarray) -> int:
    """Straightforward per-byte implementation of the paper's counting rule."""
    count = 0
    for a, b in zip(x_bytes.tolist(), y_bytes.tolist()):
        payload_equal = (a & 0x7F) == (b & 0x7F)
        indicator_or = ((a | b) & 0x80) != 0
        if payload_equal and indicator_or:
            count += 1
    return count


def bytes_to_words(b: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(b, dtype=np.uint8).view("<u4")


class TestMatchBits:
    def test_equal_payload_one_indicator(self):
        x = bytes_to_words(np.array([0x85, 0x01, 0x00, 0x7F], dtype=np.uint8))
        y = bytes_to_words(np.array([0x05, 0x81, 0x00, 0x7F], dtype=np.uint8))
        bits = match_bits(x, y)
        # bytes 0 and 1 match (payload equal, one indicator set); byte 2 is
        # NULL vs NULL (no indicator); byte 3 has equal payloads but neither
        # indicator set.
        assert int(bits[0]) == 0x00008080

    def test_no_match_when_payload_differs(self):
        x = bytes_to_words(np.array([0x81, 0x82, 0x83, 0x84], dtype=np.uint8))
        y = bytes_to_words(np.array([0x01 ^ 0x7F, 0x02 ^ 0x7F, 0x03 ^ 0x7F, 0x04 ^ 0x7F],
                                    dtype=np.uint8))
        assert int(match_bits(x, y)[0]) == 0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            match_bits(np.zeros(2, dtype=np.uint32), np.zeros(3, dtype=np.uint32))

    def test_null_never_matches_valid_entries(self):
        # NULL (0x00) against every *valid* entry byte must never count.
        # Valid entries have payload >= 1 (0 is reserved for NULL by the
        # encoder), so the SWAR rule can only fire against other NULLs —
        # which carry indicator bit 0 and are therefore not counted either.
        valid = np.array([p | (b << 7) for p in range(1, 128) for b in (0, 1)] + [0x00],
                         dtype=np.uint8)
        pad = (-valid.size) % 4
        valid = np.concatenate([valid, np.zeros(pad, dtype=np.uint8)])
        nulls = np.zeros_like(valid)
        assert count_matches(bytes_to_words(nulls), bytes_to_words(valid)) == 0


class TestCountMatches:
    @given(st.lists(st.integers(0, 255), min_size=4,
                    max_size=256).filter(lambda v: len(v) % 4 == 0),
           st.integers(0, 2**31))
    @settings(max_examples=100, deadline=None)
    def test_matches_scalar_reference(self, xs, seed):
        rng = np.random.default_rng(seed)
        x = np.array(xs, dtype=np.uint8)
        y = rng.integers(0, 256, size=len(xs), dtype=np.uint8)
        expected = scalar_reference_count(x, y)
        assert count_matches(bytes_to_words(x), bytes_to_words(y)) == expected

    def test_per_word_counts_sum_to_total(self):
        rng = np.random.default_rng(3)
        x = rng.integers(0, 256, size=400, dtype=np.uint8)
        y = rng.integers(0, 256, size=400, dtype=np.uint8)
        xw, yw = bytes_to_words(x), bytes_to_words(y)
        assert int(count_matches_per_word(xw, yw).sum()) == count_matches(xw, yw)

    def test_per_word_counts_bounded_by_four(self):
        x = np.full(40, 0x85, dtype=np.uint8)
        y = np.full(40, 0x85, dtype=np.uint8)
        counts = count_matches_per_word(bytes_to_words(x), bytes_to_words(y))
        assert counts.max() == 4

    def test_symmetry(self):
        rng = np.random.default_rng(9)
        x = rng.integers(0, 2**32, size=64, dtype=np.uint32)
        y = rng.integers(0, 2**32, size=64, dtype=np.uint32)
        assert count_matches(x, y) == count_matches(y, x)

    def test_identical_all_indicator(self):
        x = np.full(16, 0xFFFFFFFF, dtype=np.uint32)
        assert count_matches(x, x) == 64


class TestFolded:
    def test_equal_size_same_as_direct(self):
        rng = np.random.default_rng(0)
        x = rng.integers(0, 2**32, size=32, dtype=np.uint32)
        y = rng.integers(0, 2**32, size=32, dtype=np.uint32)
        assert count_matches_folded(x, y) == count_matches(x, y)

    def test_folding_tiles_small_operand(self):
        rng = np.random.default_rng(1)
        small = rng.integers(0, 2**32, size=8, dtype=np.uint32)
        large = np.tile(small, 4)
        # Large is small repeated, so every word matches its counterpart.
        assert count_matches_folded(large, small) == count_matches(large, np.tile(small, 4))

    def test_rejects_non_multiple(self):
        with pytest.raises(ValueError):
            count_matches_folded(np.zeros(10, dtype=np.uint32), np.zeros(4, dtype=np.uint32))

    def test_rejects_empty_small(self):
        with pytest.raises(ValueError):
            count_matches_folded(np.zeros(4, dtype=np.uint32), np.zeros(0, dtype=np.uint32))

    @given(st.integers(1, 8), st.integers(1, 4), st.integers(0, 2**31))
    @settings(max_examples=50, deadline=None)
    def test_property_fold_equals_explicit_tile(self, small_words, reps, seed):
        rng = np.random.default_rng(seed)
        small = rng.integers(0, 2**32, size=small_words, dtype=np.uint32)
        large = rng.integers(0, 2**32, size=small_words * reps, dtype=np.uint32)
        expected = count_matches(large, np.tile(small, reps))
        assert count_matches_folded(large, small) == expected
