"""Unit and property tests for the hash family and permutations."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import BatmapConfig
from repro.core.hashing import (
    ArrayPermutation,
    FeistelPermutation,
    HashFamily,
    make_permutations,
)


class TestArrayPermutation:
    def test_is_bijection(self):
        perm = ArrayPermutation.random(100, rng=0)
        out = perm.apply(np.arange(100))
        assert np.array_equal(np.sort(out), np.arange(100))

    def test_invert_roundtrip(self):
        perm = ArrayPermutation.random(64, rng=1)
        x = np.arange(64)
        assert np.array_equal(perm.invert(perm.apply(x)), x)

    def test_out_of_range_rejected(self):
        perm = ArrayPermutation.random(10, rng=0)
        with pytest.raises(ValueError):
            perm.apply(np.array([10]))
        with pytest.raises(ValueError):
            perm.invert(np.array([-1]))

    def test_deterministic_given_seed(self):
        a = ArrayPermutation.random(50, rng=42).apply(np.arange(50))
        b = ArrayPermutation.random(50, rng=42).apply(np.arange(50))
        assert np.array_equal(a, b)


class TestFeistelPermutation:
    @pytest.mark.parametrize("m", [1, 2, 7, 100, 1023, 5000])
    def test_is_bijection(self, m):
        perm = FeistelPermutation.random(m, rng=0)
        out = perm.apply(np.arange(m))
        assert np.array_equal(np.sort(out), np.arange(m))

    def test_invert_roundtrip(self):
        perm = FeistelPermutation.random(3001, rng=5)
        x = np.arange(3001)
        assert np.array_equal(perm.invert(perm.apply(x)), x)

    def test_empty_input(self):
        perm = FeistelPermutation.random(10, rng=0)
        assert perm.apply(np.array([], dtype=np.int64)).size == 0

    def test_out_of_range_rejected(self):
        perm = FeistelPermutation.random(10, rng=0)
        with pytest.raises(ValueError):
            perm.apply(np.array([11]))

    @given(st.integers(min_value=1, max_value=2000), st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_property_bijection(self, m, seed):
        perm = FeistelPermutation.random(m, rng=seed)
        out = perm.apply(np.arange(m))
        assert np.array_equal(np.sort(out), np.arange(m))


class TestMakePermutations:
    def test_count_and_independence(self):
        perms = make_permutations(200, 3, rng=0)
        assert len(perms) == 3
        images = [tuple(p.apply(np.arange(200)).tolist()) for p in perms]
        assert len(set(images)) == 3  # overwhelmingly likely to differ

    def test_force_feistel(self):
        perms = make_permutations(100, 2, rng=0, force="feistel")
        assert all(isinstance(p, FeistelPermutation) for p in perms)

    def test_force_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_permutations(100, 1, rng=0, force="banana")


class TestHashFamily:
    def test_positions_within_range(self, family):
        x = np.arange(family.universe_size)
        for t in range(3):
            pos = family.positions(t, x, 64)
            assert pos.min() >= 0 and pos.max() < 64

    def test_range_nesting_property(self, family):
        """h mod r_small == (h mod r_large) mod r_small for nested powers of two."""
        x = np.arange(family.universe_size)
        for t in range(3):
            small = family.positions(t, x, 32)
            large = family.positions(t, x, 256)
            assert np.array_equal(small, large % 32)

    def test_rejects_non_power_of_two_range(self, family):
        with pytest.raises(ValueError):
            family.positions(0, np.array([1]), 48)

    def test_rejects_bad_table(self, family):
        with pytest.raises(ValueError):
            family.positions(3, np.array([1]), 64)

    def test_payload_reserves_null(self, family):
        payloads = family.payloads(0, np.arange(family.universe_size))
        assert payloads.min() >= 1

    def test_decode_inverts_encode(self, small_universe, config):
        shift = config.shift_for_universe(small_universe)
        family = HashFamily.create(small_universe, shift=shift, rng=0)
        x = np.arange(small_universe)
        r = 1 << max(3, shift)
        for t in range(3):
            payload = family.payloads(t, x)
            pos = family.positions(t, x, r)
            decoded = family.decode(t, payload, pos, r)
            assert np.array_equal(decoded, x)

    def test_decode_requires_floor(self, small_universe):
        cfg = BatmapConfig()
        shift = max(2, cfg.shift_for_universe(4 * small_universe))
        family = HashFamily.create(4 * small_universe, shift=shift, rng=0)
        with pytest.raises(ValueError):
            family.decode(0, np.array([1]), np.array([0]), 1 << (shift - 1))

    def test_device_positions_formula(self):
        # r = 16, r0 = 4: position p of table t maps to 12*(p//4) + p%4 + 4*t
        pos = np.array([0, 3, 4, 7, 15])
        got = HashFamily.device_positions(pos, table=1, r=16, r0=4)
        expected = 12 * (pos // 4) + (pos % 4) + 4
        assert np.array_equal(got, expected)

    def test_device_positions_fold_property(self):
        """Device offsets of a large batmap fold onto a small one via mod 3*r_small."""
        r_large, r_small, r0 = 64, 16, 8
        pos_large = np.arange(r_large)
        for t in range(3):
            dev_large = HashFamily.device_positions(pos_large, t, r_large, r0)
            dev_small = HashFamily.device_positions(pos_large % r_small, t, r_small, r0)
            assert np.array_equal(dev_large % (3 * r_small), dev_small)

    def test_device_positions_requires_r0_le_r(self):
        with pytest.raises(ValueError):
            HashFamily.device_positions(np.array([0]), 0, r=8, r0=16)

    def test_requires_three_permutations(self, small_universe):
        perms = make_permutations(small_universe, 2, rng=0)
        with pytest.raises(ValueError):
            HashFamily(universe_size=small_universe, permutations=perms, shift=0)

    def test_wrong_domain_rejected(self, small_universe):
        perms = make_permutations(small_universe // 2, 3, rng=0)
        with pytest.raises(ValueError):
            HashFamily(universe_size=small_universe, permutations=perms, shift=0)


class TestStructuralEquality:
    """Regression: families must survive a pickle round-trip (worker processes)."""

    @pytest.mark.parametrize("force", ["array", "feistel"])
    def test_pickle_round_trip_equal(self, force):
        import pickle
        family = HashFamily.create(512, shift=2, rng=4, force_permutation=force)
        clone = pickle.loads(pickle.dumps(family))
        assert clone is not family
        assert clone == family
        assert not (clone != family)
        assert hash(clone) == hash(family)

    def test_different_seeds_not_equal(self):
        a = HashFamily.create(256, shift=1, rng=0)
        b = HashFamily.create(256, shift=1, rng=1)
        assert a != b

    def test_different_shift_not_equal(self):
        a = HashFamily.create(256, shift=1, rng=0)
        perms = a.permutations
        b = HashFamily(universe_size=256, permutations=perms, shift=2)
        assert a != b

    def test_array_permutation_structural_equality(self):
        a = ArrayPermutation.random(128, rng=7)
        b = ArrayPermutation(table=a.table.copy(), inverse=a.inverse.copy())
        assert a == b
        assert hash(a) == hash(b)
        c = ArrayPermutation.random(128, rng=8)
        assert a != c

    def test_cross_kind_never_equal(self):
        a = ArrayPermutation.random(64, rng=0)
        f = FeistelPermutation.random(64, rng=0)
        assert a != f and f != a

    def test_not_equal_to_other_types(self):
        family = HashFamily.create(64, shift=0, rng=0)
        assert family != "family"
        assert ArrayPermutation.random(8, rng=0) != 42
