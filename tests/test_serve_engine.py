"""Serving engine contracts: every served result equals the direct call.

The load-bearing identity is **result identity**, not entry identity:
cuckoo placement consumes the build RNG, so a sharded build and a
monolithic build of the same sets place elements differently — but which
elements are stored (and which failed) is identical, and every query the
server answers (membership, counts, top-k, multiway) depends only on that.
What *is* byte-exact is the spill round-trip: a rehydrated batmap's
Figure-4 device row equals the spilled bytes bit for bit.
"""

from __future__ import annotations

import shutil

import numpy as np
import pytest

from repro.core.collection import BatmapCollection
from repro.core.errors import SpillFormatError
from repro.core.hashing import HashFamily, load_family, save_family
from repro.core.sharded import FAMILY_NAME, ShardedCollection
from repro.extensions.multiway import multiway_intersection
from repro.serve.engine import SpillQueryEngine
from repro.utils.bits import pack_bytes_to_words
from repro.utils.memory import parse_memory_size
from tests.conftest import random_sets

UNIVERSE = 1024
N_SETS = 24
SEED = 11


def make_sets():
    rng = np.random.default_rng(4)
    return random_sets(rng, N_SETS, UNIVERSE, min_size=1, max_size=200)


@pytest.fixture(scope="module")
def spill(tmp_path_factory):
    """One multi-shard spill plus the equivalent direct collection."""
    base = tmp_path_factory.mktemp("serve_engine")
    sets = make_sets()
    sharded = ShardedCollection.build(
        sets, UNIVERSE, base / "spill", rng=SEED,
        memory_budget=parse_memory_size("64M"), max_sets_per_shard=7)
    assert sharded.n_shards >= 3     # the contracts must cross shards
    reference = BatmapCollection.build(sets, UNIVERSE, rng=SEED)
    return base / "spill", sets, reference


@pytest.fixture(scope="module")
def engine(spill):
    spill_dir, _, _ = spill
    engine = SpillQueryEngine(ShardedCollection.from_spill(spill_dir))
    yield engine
    engine.close()


class TestFamilyPersistence:
    def test_array_family_round_trips(self, tmp_path):
        family = HashFamily.create(512, shift=6, rng=3)
        save_family(tmp_path / "fam.npz", family)
        assert load_family(tmp_path / "fam.npz") == family

    def test_feistel_family_round_trips(self, tmp_path):
        # Large universes switch to Feistel permutations.
        family = HashFamily.create(1 << 22, shift=19, rng=5)
        save_family(tmp_path / "fam.npz", family)
        loaded = load_family(tmp_path / "fam.npz")
        assert loaded == family
        probe = np.array([0, 17, (1 << 22) - 1], dtype=np.int64)
        for t in range(3):
            np.testing.assert_array_equal(loaded.permuted(t, probe),
                                          family.permuted(t, probe))

    def test_spill_includes_family(self, spill):
        spill_dir, _, _ = spill
        sharded = ShardedCollection.from_spill(spill_dir)
        assert (spill_dir / FAMILY_NAME).exists()
        assert sharded.family == load_family(spill_dir / FAMILY_NAME)

    def test_pre_family_spill_raises(self, spill, tmp_path):
        spill_dir, _, _ = spill
        legacy = tmp_path / "legacy"
        shutil.copytree(spill_dir, legacy)
        (legacy / FAMILY_NAME).unlink()
        sharded = ShardedCollection.from_spill(legacy)
        with pytest.raises(SpillFormatError, match="family"):
            _ = sharded.family
        with pytest.raises(SpillFormatError, match="family"):
            SpillQueryEngine(sharded)


class TestRehydration:
    def test_device_row_round_trips_exactly(self, engine, spill):
        """Rehydration is the exact inverse of the spill's interleave."""
        spill_dir, _, _ = spill
        sharded = ShardedCollection.from_spill(spill_dir)
        for set_id in range(N_SETS):
            bm = engine.batmap(set_id)
            shard_idx = int(engine.shard_of(np.array([set_id]))[0])
            index = engine._indexes[shard_idx]
            slot = int(engine._slot_of(shard_idx, np.array([set_id]))[0])
            width = int(index.widths[slot])
            offset = int(index.offsets[slot])
            spilled = np.asarray(index.words[offset:offset + width])
            repacked = pack_bytes_to_words(bm.device_array(sharded.r0))
            np.testing.assert_array_equal(repacked, spilled)

    def test_decoded_elements_match_the_source_sets(self, engine, spill):
        _, sets, _ = spill
        for set_id, original in enumerate(sets):
            bm = engine.batmap(set_id)
            stored = np.setdiff1d(original, np.asarray(bm.failed, dtype=np.int64))
            np.testing.assert_array_equal(np.sort(bm.decode_elements()), stored)
            assert bm.set_size == original.size

    def test_failed_lists_match_the_direct_build(self, engine, spill):
        _, _, reference = spill
        for set_id in range(N_SETS):
            assert engine.batmap(set_id).failed == reference.batmap(set_id).failed

    def test_batmap_cache_returns_the_same_object(self, engine):
        assert engine.batmap(0) is engine.batmap(0)

    def test_batmap_cache_evicts_lru(self, spill):
        spill_dir, _, _ = spill
        engine = SpillQueryEngine(ShardedCollection.from_spill(spill_dir),
                                  batmap_cache_sets=1)
        first = engine.batmap(0)
        engine.batmap(1)                      # evicts set 0
        assert engine.batmap(0) is not first
        engine.close()


class TestMembership:
    def test_matches_direct_contains(self, engine, spill):
        _, _, reference = spill
        probes = np.arange(-3, UNIVERSE + 3, dtype=np.int64)
        for set_id in (0, 5, N_SETS - 1):
            bm = reference.batmap(set_id)
            expected = np.array([bm.contains(int(x)) for x in probes])
            np.testing.assert_array_equal(engine.members(set_id, probes),
                                          expected)

    def test_batched_equals_unbatched(self, engine):
        rng = np.random.default_rng(9)
        queries = [(int(rng.integers(N_SETS)),
                    rng.integers(-5, UNIVERSE + 5, size=int(rng.integers(0, 40))))
                   for _ in range(12)]
        batched = engine.members_batch(queries)
        for (set_id, elements), got in zip(queries, batched):
            np.testing.assert_array_equal(got, engine.members(set_id, elements))

    def test_out_of_universe_is_never_a_member(self, engine):
        mask = engine.members(0, [-1, UNIVERSE, UNIVERSE + 100])
        assert not mask.any()

    def test_empty_probe(self, engine):
        assert engine.members(0, []).shape == (0,)
        assert engine.members_batch([]) == []

    def test_bad_set_id(self, engine):
        with pytest.raises(IndexError, match="out of range"):
            engine.members(N_SETS, [0])


class TestCounts:
    def test_pairs_bit_identical_to_direct(self, engine, spill):
        _, _, reference = spill
        matrix = reference.count_all_pairs()
        pairs = np.array([(i, j) for i in range(N_SETS)
                          for j in range(i + 1, N_SETS)], dtype=np.int64)
        counts = engine.count_pairs(pairs)
        np.testing.assert_array_equal(counts, matrix[pairs[:, 0], pairs[:, 1]])

    def test_pair_order_is_irrelevant(self, engine):
        forward = engine.count_pairs([(2, 19), (0, 7)])
        backward = engine.count_pairs([(19, 2), (7, 0)])
        np.testing.assert_array_equal(forward, backward)

    def test_self_pair_counts_stored_elements(self, engine, spill):
        _, sets, _ = spill
        for set_id in (0, 3, N_SETS - 1):
            bm = engine.batmap(set_id)
            expected = sets[set_id].size - len(bm.failed)
            assert engine.count_pairs([(set_id, set_id)])[0] == expected

    def test_empty_pairs(self, engine):
        assert engine.count_pairs(np.zeros((0, 2), dtype=np.int64)).size == 0

    def test_bad_pair_shape(self, engine):
        with pytest.raises(ValueError, match="shape"):
            engine.count_pairs(np.zeros((2, 3), dtype=np.int64))

    def test_count_rows_match_count_all_pairs(self, engine, spill):
        _, _, reference = spill
        matrix = reference.count_all_pairs()
        set_ids = [0, 9, 17, N_SETS - 1]
        rows = engine.count_rows(set_ids)
        for k, set_id in enumerate(set_ids):
            # off-diagonal entries must match the direct all-pairs matrix
            other = [j for j in range(N_SETS) if j != set_id]
            np.testing.assert_array_equal(rows[k, other], matrix[set_id, other])


class TestTopK:
    def expected_topk(self, matrix, set_id, k):
        row = matrix[set_id].copy()
        row[set_id] = -1
        order = np.lexsort((np.arange(row.size), -row))[:min(k, row.size - 1)]
        return [(int(j), int(matrix[set_id, j])) for j in order]

    def test_matches_reference_ranking(self, engine, spill):
        _, _, reference = spill
        matrix = reference.count_all_pairs()
        np.fill_diagonal(matrix, [engine.count_pairs([(i, i)])[0]
                                  for i in range(N_SETS)])
        for set_id, k in ((0, 1), (5, 4), (N_SETS - 1, 10)):
            assert engine.top_k(set_id, k) == self.expected_topk(
                matrix, set_id, k)

    def test_k_larger_than_collection_is_clamped(self, engine):
        ranked = engine.top_k(0, 10 * N_SETS)
        assert len(ranked) == N_SETS - 1
        assert all(j != 0 for j, _ in ranked)

    def test_batched_equals_unbatched(self, engine):
        requests = [(0, 3), (7, 5), (0, 3), (12, 1)]
        batched = engine.top_k_batch(requests)
        for (set_id, k), got in zip(requests, batched):
            assert got == engine.top_k(set_id, k)


class TestMultiway:
    def test_matches_direct_collection(self, engine, spill):
        _, _, reference = spill
        for indices in ([0, 1, 2], [3, 9, 17, 21], [N_SETS - 1, 0]):
            served = engine.multiway(indices)
            direct = multiway_intersection(reference, indices)
            np.testing.assert_array_equal(served.elements, direct.elements)
            np.testing.assert_array_equal(served.failed_involved,
                                          direct.failed_involved)
            assert served.size == direct.size


class TestLifecycle:
    def test_stats_shape(self, engine, spill):
        spill_dir, _, _ = spill
        stats = engine.stats()
        sharded = ShardedCollection.from_spill(spill_dir)
        assert stats["n_sets"] == N_SETS
        assert stats["n_shards"] == sharded.n_shards
        assert stats["universe_size"] == UNIVERSE
        assert stats["total_packed_bytes"] == sharded.total_packed_bytes

    def test_close_releases_attachments(self, spill):
        spill_dir, _, _ = spill
        engine = SpillQueryEngine(ShardedCollection.from_spill(spill_dir))
        engine.batmap(0)
        assert not engine.closed
        engine.close()
        assert engine.closed
        assert engine._indexes == []
        engine.close()                        # idempotent
