"""Incremental-lifecycle property tests: mutations ≡ from-scratch builds.

The tentpole invariant of the incremental pipeline: a spilled collection
taken through any sequence of ``append`` / ``delete`` / ``compact`` is
bit-identical — counts, pair queries, failed lists — to a from-scratch
build of the equivalent final dataset with the same hash family.  The
property holds because per-set placement depends only on
(set, family, r, config), never on sharding, generation or arrival order.

Randomized sequences run at the spill level for both family kinds and both
byte-packable payload widths.  ``payload_bits=9`` needs 16-bit entry
storage, which the spill format does not support (the sharded builder
raises ``LayoutError``), so the placement-stability half of the invariant
is pinned at the in-memory level for that width.

Also here: the stale-cache regression — after an out-of-band mutation and a
``reload``, the server must never answer from a pre-mutation cache entry.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.collection import BatmapCollection
from repro.core.config import DEFAULT_CONFIG
from repro.core.errors import LayoutError
from repro.core.hashing import HashFamily
from repro.core.sharded import ShardedCollection
from repro.serve.client import ServeClient
from repro.serve.engine import SpillQueryEngine
from repro.serve.server import BackgroundServer
from repro.utils.memory import parse_memory_size
from tests.conftest import random_sets

UNIVERSE = 256
BUDGET = parse_memory_size("64M")
SEED = 42
CAPACITY = 400  # lazy-family headroom: lets the universe grow mid-sequence


def reference_counts(sharded, live_sets, config):
    """From-scratch in-memory build of the live dataset, same family."""
    collection = BatmapCollection.build(
        live_sets, sharded.universe_size, config=config, family=sharded.family)
    return collection, collection.count_all_pairs(compute="batch")


def check_equivalent(sharded, live_sets, config):
    collection, expected = reference_counts(sharded, live_sets, config)
    np.testing.assert_array_equal(sharded.count_all_pairs(), expected)
    return collection


@pytest.mark.parametrize("family_kind", ["eager", "lazy"])
@pytest.mark.parametrize("payload_bits", [5, 7])
def test_random_lifecycle_matches_from_scratch(tmp_path, family_kind,
                                               payload_bits):
    config = DEFAULT_CONFIG.with_(payload_bits=payload_bits)
    rng = np.random.default_rng(900 + payload_bits)
    universe = UNIVERSE

    def fresh_sets(n):
        return random_sets(rng, n, universe, min_size=1, max_size=40)

    live = fresh_sets(10)
    lazy = family_kind == "lazy"
    sharded = ShardedCollection.build(
        live, universe, tmp_path / "spill", rng=SEED, config=config,
        memory_budget=BUDGET, family_kind=family_kind,
        family_capacity=CAPACITY if lazy else None, max_sets_per_shard=4)
    check_equivalent(sharded, live, config)

    for step in range(8):
        op = int(rng.integers(0, 3))
        if op == 0 or len(live) <= 4:
            if lazy and step == 3:
                universe += 40  # growth within capacity: placements frozen
            batch = fresh_sets(int(rng.integers(2, 5)))
            sharded.append(batch, universe_size=universe)
            live = live + batch
        elif op == 1:
            ids = np.sort(rng.choice(len(live), size=2, replace=False))
            sharded.delete(ids)
            keep = np.setdiff1d(np.arange(len(live)), ids)
            live = [live[k] for k in keep.tolist()]
        else:
            sharded.compact(full=bool(rng.integers(0, 2)))
        check_equivalent(sharded, live, config)

    # Disk re-attach and the serving engine agree with the final state —
    # counts, point pair queries, membership, and per-set failed lists.
    reattached = ShardedCollection.from_spill(tmp_path / "spill")
    reference = check_equivalent(reattached, live, config)
    engine = SpillQueryEngine(reattached)
    try:
        pairs = np.array([[0, 1], [2, len(live) - 1]], dtype=np.int64)
        expected_pairs = [reference.count_pair(int(i), int(j))
                          for i, j in pairs]
        np.testing.assert_array_equal(engine.count_pairs(pairs),
                                      expected_pairs)
        probe = np.arange(universe, dtype=np.int64)
        for i in (0, len(live) // 2, len(live) - 1):
            np.testing.assert_array_equal(
                np.nonzero(engine.members(i, probe))[0], live[i])
            assert engine.batmap(i).failed == reference.batmap(i).failed
    finally:
        engine.close()

    # The strongest form: a from-scratch *spill* build of the final live
    # dataset (same seed, same capacity) serves the same bytes.
    scratch = ShardedCollection.build(
        live, universe, tmp_path / "scratch", rng=SEED, config=config,
        memory_budget=BUDGET, family_kind=family_kind,
        family_capacity=CAPACITY if lazy else None, max_sets_per_shard=4)
    assert scratch.family == reattached.family
    np.testing.assert_array_equal(scratch.count_all_pairs(),
                                  reattached.count_all_pairs())


class TestPayloadNine:
    """payload_bits=9: in-memory placement stability, spill rejection."""

    CONFIG = DEFAULT_CONFIG.with_(payload_bits=9)

    def test_placement_stable_under_dataset_growth_in_memory(self):
        # 9-bit payloads store in 16-bit entries, so the spill format
        # (one byte per entry, SWAR-folded) cannot hold them — but the
        # incremental invariant is a property of placement, not storage:
        # adding sets to a collection must not move any existing row.
        rng = np.random.default_rng(77)
        base = random_sets(rng, 8, UNIVERSE, min_size=1, max_size=40)
        delta = random_sets(rng, 4, UNIVERSE, min_size=1, max_size=40)
        family = HashFamily.create(
            UNIVERSE, shift=self.CONFIG.shift_for_universe(UNIVERSE), rng=5)
        small = BatmapCollection.build(base, UNIVERSE, config=self.CONFIG,
                                       family=family)
        grown = BatmapCollection.build(base + delta, UNIVERSE,
                                       config=self.CONFIG, family=family)
        for i in range(len(base)):
            before, after = small.batmap(i), grown.batmap(i)
            assert after.r == before.r
            assert after.failed == before.failed
            np.testing.assert_array_equal(after.entries, before.entries)
        np.testing.assert_array_equal(
            grown.count_all_pairs()[:len(base), :len(base)],
            small.count_all_pairs())

    def test_sharded_builder_rejects_sixteen_bit_entries(self, tmp_path):
        rng = np.random.default_rng(1)
        sets = random_sets(rng, 4, UNIVERSE, min_size=1, max_size=20)
        with pytest.raises(LayoutError):
            ShardedCollection.build(sets, UNIVERSE, tmp_path / "spill",
                                    rng=1, config=self.CONFIG,
                                    memory_budget=BUDGET)


class TestStaleCacheRegression:
    def test_mutation_plus_reload_invalidates_cached_results(self, tmp_path):
        # Deliberate overlaps so the answer to live pair (0, 1) provably
        # changes when set 1 is deleted: (0,1) then denotes today's (0,2).
        rng = np.random.default_rng(3)
        sets = [np.arange(0, 50), np.arange(0, 10), np.arange(0, 30)]
        sets += random_sets(rng, 5, UNIVERSE, min_size=1, max_size=60)
        spill = tmp_path / "spill"
        ShardedCollection.build(sets, UNIVERSE, spill, rng=9,
                                memory_budget=BUDGET, max_sets_per_shard=3)
        with BackgroundServer(spill) as bg:
            with ServeClient(bg.host, bg.port) as client:
                assert client.count([[0, 1]]) == [10]
                # Same generation: the repeat answers from the cache.
                assert client.count([[0, 1]]) == [10]
                assert client.metrics()["cache"]["hits"] >= 1

                ShardedCollection.from_spill(spill).delete([1])
                info = client.reload()
                assert info["generation"] == 1

                # The generation-scoped key must miss the pre-mutation
                # entry: (0, 1) now means old (0, 2) → 30, never 10.
                assert client.count([[0, 1]]) == [30]
                assert client.stats()["generation"] == 1

    def test_append_then_reload_serves_new_sets(self, tmp_path):
        rng = np.random.default_rng(8)
        sets = random_sets(rng, 6, UNIVERSE, min_size=1, max_size=60)
        spill = tmp_path / "spill"
        ShardedCollection.build(sets, UNIVERSE, spill, rng=2,
                                memory_budget=BUDGET)
        with BackgroundServer(spill) as bg:
            with ServeClient(bg.host, bg.port) as client:
                assert client.stats()["n_sets"] == 6
                extra = [np.arange(5, 25)]
                ShardedCollection.from_spill(spill).append(extra)
                client.reload()
                stats = client.stats()
                assert stats["n_sets"] == 7
                assert stats["generation"] == 1
                member = client.member(6, list(range(30)))
                assert [e for e, hit in enumerate(member) if hit] == list(
                    range(5, 25))
