"""Streaming FIMI readers: chunk iteration, stats scan, edge-case inputs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import DataFormatError, DatasetError
from repro.datasets.fimi_io import parse_fimi_line, read_fimi, write_fimi
from repro.datasets.streaming import (
    FimiStats,
    collect_transactions,
    iter_fimi_chunks,
    scan_fimi_stats,
)
from repro.datasets.synthetic import generate_density_instance


def fimi_file(tmp_path, text, name="data.fimi"):
    path = tmp_path / name
    path.write_text(text)
    return path


class TestChunkIteration:
    def test_matches_in_memory_reader(self, tmp_path):
        db = generate_density_instance(24, 0.3, 2000, rng=0)
        path = fimi_file(tmp_path, "")
        write_fimi(db, path)
        expected = read_fimi(path)
        streamed = [
            t
            for chunk in iter_fimi_chunks(path, chunk_transactions=7)
            for t in chunk.transactions
        ]
        assert len(streamed) == expected.n_transactions
        for mine, theirs in zip(streamed, expected.transactions):
            np.testing.assert_array_equal(mine, theirs)

    def test_chunk_tids_are_global(self, tmp_path):
        path = fimi_file(tmp_path, "1 2\n3\n4 5\n6\n7\n")
        chunks = list(iter_fimi_chunks(path, chunk_transactions=2))
        assert [c.start_tid for c in chunks] == [0, 2, 4]
        assert [c.end_tid for c in chunks] == [2, 4, 5]
        np.testing.assert_array_equal(chunks[1].tids(), [2, 3])

    def test_empty_file_yields_no_chunks(self, tmp_path):
        path = fimi_file(tmp_path, "")
        assert list(iter_fimi_chunks(path)) == []

    def test_blank_lines_and_comments_skipped_without_tid(self, tmp_path):
        path = fimi_file(tmp_path, "# header\n1 2\n\n   \n3 4\n\t\n# trailer\n5\n")
        chunks = list(iter_fimi_chunks(path, chunk_transactions=2))
        all_t = [t for c in chunks for t in c.transactions]
        assert len(all_t) == 3
        assert chunks[-1].end_tid == 3

    def test_trailing_whitespace_and_final_line_without_newline(self, tmp_path):
        path = fimi_file(tmp_path, "1 2  \n3 4\t \n5 6")
        ts = [t for c in iter_fimi_chunks(path) for t in c.transactions]
        assert len(ts) == 3
        np.testing.assert_array_equal(ts[2], [5, 6])

    def test_single_transaction_file(self, tmp_path):
        path = fimi_file(tmp_path, "41 12 7\n")
        chunks = list(iter_fimi_chunks(path))
        assert len(chunks) == 1
        assert chunks[0].start_tid == 0
        np.testing.assert_array_equal(chunks[0].transactions[0], [7, 12, 41])

    def test_duplicate_items_deduplicated_like_in_memory(self, tmp_path):
        path = fimi_file(tmp_path, "5 5 3 3 3\n")
        (chunk,) = iter_fimi_chunks(path)
        np.testing.assert_array_equal(chunk.transactions[0], [3, 5])

    def test_chunk_items_cap_flushes_long_transactions(self, tmp_path):
        lines = " ".join(str(i) for i in range(50))
        path = fimi_file(tmp_path, "\n".join([lines] * 6) + "\n")
        chunks = list(iter_fimi_chunks(path, chunk_transactions=100, chunk_items=100))
        # 50 items per transaction, cap 100 -> two transactions per chunk
        assert [c.n_transactions for c in chunks] == [2, 2, 2]

    def test_max_transactions(self, tmp_path):
        path = fimi_file(tmp_path, "1\n2\n3\n4\n")
        ts = [t for c in iter_fimi_chunks(path, max_transactions=2)
              for t in c.transactions]
        assert len(ts) == 2

    def test_accepts_line_iterables(self):
        chunks = list(iter_fimi_chunks(["1 2\n", "3\n"], chunk_transactions=1))
        assert len(chunks) == 2

    def test_malformed_token_raises_dataset_error_with_location(self, tmp_path):
        path = fimi_file(tmp_path, "1 2\n3 x\n", name="bad.fimi")
        with pytest.raises(DataFormatError, match=r"bad: line 2: non-integer"):
            list(iter_fimi_chunks(path))
        # DataFormatError is a DatasetError: one except clause covers readers
        with pytest.raises(DatasetError):
            list(iter_fimi_chunks(path))

    def test_negative_item_id_raises(self, tmp_path):
        path = fimi_file(tmp_path, "1 -2\n")
        with pytest.raises(DataFormatError, match="negative item id"):
            list(iter_fimi_chunks(path))

    def test_parse_fimi_line_shared_semantics(self):
        assert parse_fimi_line("  \n", 1) is None
        assert parse_fimi_line("# c\n", 1) is None
        np.testing.assert_array_equal(parse_fimi_line("2 1\n", 1), [1, 2])
        with pytest.raises(DataFormatError, match="src: line 9"):
            parse_fimi_line("a\n", 9, "src")


class TestScanStats:
    def test_matches_database_statistics(self, tmp_path):
        db = generate_density_instance(40, 0.2, 4000, rng=1)
        path = tmp_path / "scan.fimi"
        write_fimi(db, path)
        stats = scan_fimi_stats(path, chunk_transactions=13)
        assert stats.n_transactions == db.n_transactions
        assert stats.n_items == db.n_items
        assert stats.total_items == db.total_items
        np.testing.assert_array_equal(stats.item_supports, db.item_supports())
        assert stats.density == pytest.approx(db.density)

    def test_chunk_size_invariance(self, tmp_path):
        db = generate_density_instance(20, 0.3, 1500, rng=2)
        path = tmp_path / "inv.fimi"
        write_fimi(db, path)
        small = scan_fimi_stats(path, chunk_transactions=1)
        large = scan_fimi_stats(path, chunk_transactions=10_000)
        assert small.n_transactions == large.n_transactions
        np.testing.assert_array_equal(small.item_supports, large.item_supports)

    def test_empty_stream(self, tmp_path):
        path = fimi_file(tmp_path, "# only a comment\n\n")
        stats = scan_fimi_stats(path)
        assert isinstance(stats, FimiStats)
        assert stats.n_transactions == 0
        assert stats.n_items == 0
        assert stats.total_items == 0
        assert stats.item_supports.size == 0

    def test_support_array_growth_across_chunks(self, tmp_path):
        # item ids force repeated geometric growth of the supports array
        path = fimi_file(tmp_path, "1\n2000\n1\n5000\n2000\n")
        stats = scan_fimi_stats(path, chunk_transactions=1)
        assert stats.n_items == 5001
        assert stats.item_supports[1] == 2
        assert stats.item_supports[2000] == 2
        assert stats.item_supports[5000] == 1
        assert stats.item_supports.sum() == stats.total_items


class TestCollectTransactions:
    def test_sparse_extraction(self, tmp_path):
        path = fimi_file(tmp_path, "1 2\n3 4\n5 6\n7 8\n")
        got = collect_transactions(path, [0, 2], chunk_transactions=1)
        assert sorted(got) == [0, 2]
        np.testing.assert_array_equal(got[2], [5, 6])

    def test_missing_and_empty_requests(self, tmp_path):
        path = fimi_file(tmp_path, "1 2\n")
        assert collect_transactions(path, []) == {}
        assert collect_transactions(path, [99]) == {}

    def test_stops_after_last_requested_tid(self, tmp_path):
        path = fimi_file(tmp_path, "1\n2\n3 x\n")
        # tid 2 is on the malformed line; requesting only earlier tids must
        # not force a parse of the rest of the file
        got = collect_transactions(path, [0], chunk_transactions=1)
        np.testing.assert_array_equal(got[0], [1])
