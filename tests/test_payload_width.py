"""Regression tests for configurable payload widths (the hardcoded-0x7F bug).

The seed silently ignored ``BatmapConfig.payload_bits`` in every decode /
membership path: ``Batmap.contains``, ``Batmap.decode_elements`` and the
multiway probe all masked entries with a literal ``0x7F``, and the encoder
truncated wide payloads through ``astype(np.uint8)``.  Any non-default width
corrupted round-trips.  These tests pin the fix: masks and the entry storage
dtype now derive from the config, and ``payload_bits`` of 5, 7 (default) and
9 all round-trip exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.batmap import build_batmap
from repro.core.collection import BatmapCollection
from repro.core.config import BatmapConfig
from repro.core.errors import LayoutError
from repro.core.intersection import count_common, exact_intersection_size
from repro.extensions.multiway import multiway_intersection

WIDTHS = (5, 7, 9)


def build_sets(rng_seed, universe=500, n_sets=4):
    rng = np.random.default_rng(rng_seed)
    return [np.sort(rng.choice(universe, int(rng.integers(20, 120)), replace=False))
            for _ in range(n_sets)]


class TestConfigDerivedLayout:
    def test_payload_mask_matches_width(self):
        assert BatmapConfig(payload_bits=5).payload_mask == 0x1F
        assert BatmapConfig(payload_bits=7).payload_mask == 0x7F
        assert BatmapConfig(payload_bits=9).payload_mask == 0x1FF

    def test_storage_dtype_widens(self):
        assert BatmapConfig(payload_bits=5).entry_dtype == np.dtype(np.uint8)
        assert BatmapConfig(payload_bits=7).entry_dtype == np.dtype(np.uint8)
        assert BatmapConfig(payload_bits=9).entry_dtype == np.dtype(np.uint16)
        assert BatmapConfig(payload_bits=17).entry_dtype == np.dtype(np.uint32)

    def test_indicator_is_storage_top_bit(self):
        assert BatmapConfig(payload_bits=5).indicator_mask == 0x80
        assert BatmapConfig(payload_bits=7).indicator_mask == 0x80
        assert BatmapConfig(payload_bits=9).indicator_mask == 0x8000


class TestRoundTrip:
    @pytest.mark.parametrize("payload_bits", WIDTHS)
    def test_single_batmap_round_trips(self, payload_bits):
        config = BatmapConfig(payload_bits=payload_bits)
        elements = np.arange(0, 500, 3, dtype=np.int64)
        bm = build_batmap(elements, 500, config=config, rng=1)
        stored = np.setdiff1d(elements, np.array(bm.failed, dtype=np.int64))
        assert np.array_equal(bm.decode_elements(), stored)
        assert bm.entries.dtype == config.entry_dtype

    @pytest.mark.parametrize("payload_bits", WIDTHS)
    def test_collection_round_trips(self, payload_bits):
        """The ISSUE regression: a collection built with a non-default width
        must decode every set and answer membership exactly."""
        config = BatmapConfig(payload_bits=payload_bits)
        sets = build_sets(payload_bits, universe=500)
        coll = BatmapCollection.build(sets, 500, config=config, rng=2)
        probe = np.arange(500)
        for i, original in enumerate(sets):
            bm = coll.batmap(i)
            stored = np.setdiff1d(original, np.array(bm.failed, dtype=np.int64))
            assert np.array_equal(bm.decode_elements(), stored)
            member = np.array([bm.contains(int(x)) for x in probe])
            expected = np.isin(probe, original)
            # contains() also reports failed elements as members (they belong
            # to the represented set), so compare against the full set.
            assert np.array_equal(member, expected)

    @pytest.mark.parametrize("payload_bits", WIDTHS)
    def test_pairwise_counts_exact(self, payload_bits):
        config = BatmapConfig(payload_bits=payload_bits)
        sets = build_sets(payload_bits + 10, universe=400)
        coll = BatmapCollection.build(sets, 400, config=config, rng=3)
        if coll.failed_insertions():
            pytest.skip("exactness claim only covers stored elements")
        for i in range(len(sets)):
            for j in range(i + 1, len(sets)):
                expected = exact_intersection_size(sets[i], sets[j])
                assert count_common(coll.batmap(i), coll.batmap(j)) == expected

    @pytest.mark.parametrize("payload_bits", WIDTHS)
    def test_count_all_pairs_routes_around_packed_engines(self, payload_bits):
        config = BatmapConfig(payload_bits=payload_bits)
        sets = build_sets(payload_bits + 20, universe=300)
        coll = BatmapCollection.build(sets, 300, config=config, rng=4)
        counts = coll.count_all_pairs()
        for i in range(len(sets)):
            for j in range(len(sets)):
                bm_i, bm_j = coll.batmap(i), coll.batmap(j)
                expected = (bm_i.stored_count if i == j
                            else count_common(bm_i, bm_j))
                assert counts[i, j] == expected

    @pytest.mark.parametrize("payload_bits", WIDTHS)
    def test_multiway_respects_width(self, payload_bits):
        config = BatmapConfig(payload_bits=payload_bits)
        sets = build_sets(payload_bits + 30, universe=400, n_sets=3)
        coll = BatmapCollection.build(sets, 400, config=config, rng=5)
        result = multiway_intersection(coll, [0, 1, 2])
        if result.failed_involved:
            pytest.skip("exactness claim only covers stored elements")
        expected = set(sets[0].tolist()) & set(sets[1].tolist()) & set(sets[2].tolist())
        assert set(result.elements.tolist()) == expected

    @given(st.integers(0, 2**31))
    @settings(max_examples=10, deadline=None)
    def test_property_wide_payload_round_trip(self, seed):
        rng = np.random.default_rng(seed)
        universe = int(rng.integers(40, 800))
        config = BatmapConfig(payload_bits=9)
        elements = np.sort(rng.choice(
            universe, int(rng.integers(1, max(2, universe // 2))), replace=False))
        bm = build_batmap(elements, universe, config=config, rng=int(seed % 13))
        stored = np.setdiff1d(elements, np.array(bm.failed, dtype=np.int64))
        assert np.array_equal(bm.decode_elements(), stored)


class TestMinerWidePayload:
    def test_pair_miner_auto_routes_to_host_reference(self):
        """The planner's 'host' verdict must reach the miner: wide-payload
        layouts mine exactly through the per-pair reference instead of
        crashing in the batch engine."""
        from repro.baselines.fpgrowth import FPGrowthMiner
        from repro.datasets.synthetic import generate_density_instance
        from repro.mining.pair_mining import BatmapPairMiner

        db = generate_density_instance(12, 0.3, 600, rng=6)
        for compute in ("auto", "host"):
            miner = BatmapPairMiner(compute=compute,
                                    config=BatmapConfig(payload_bits=9))
            report = miner.mine(db, min_support=3, rng=0)
            assert report.count_backend == "host"
            expected = FPGrowthMiner().mine_pairs(db.transactions, db.n_items, 3)
            assert report.supports.frequent_pairs(3) == expected


class TestPackedEngineGates:
    def test_batch_counter_rejects_wide_entries(self):
        config = BatmapConfig(payload_bits=9)
        coll = BatmapCollection.build(build_sets(0), 500, config=config, rng=0)
        with pytest.raises(LayoutError):
            coll.batch_counter()

    def test_packed_rows_reject_wide_entries(self):
        config = BatmapConfig(payload_bits=9)
        bm = build_batmap(np.arange(0, 300, 4), 300, config=config, rng=0)
        with pytest.raises(LayoutError):
            bm.packed_rows
        with pytest.raises(LayoutError):
            bm.device_array(bm.r)

    def test_wrong_dtype_rejected_at_construction(self):
        config = BatmapConfig(payload_bits=9)
        bm = build_batmap(np.arange(0, 100, 4), 100, config=config, rng=0)
        from repro.core.batmap import Batmap

        with pytest.raises(ValueError):
            Batmap(family=bm.family, config=config, r=bm.r,
                   entries=bm.entries.astype(np.uint8), set_size=bm.set_size)
