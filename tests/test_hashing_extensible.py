"""Extensible (lazy) hash family: growth, determinism, persistence, memory.

The incremental-ingest contract rests on one property: growing the universe
within the reserved capacity changes *nothing* about how already-placed
elements hash.  These tests pin that property directly on the family, plus
the resource claim that makes the lazy family worth having — O(items
touched) resident memory instead of O(universe) permutation tables.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.core.config import DEFAULT_CONFIG
from repro.core.hashing import (
    ExtensibleHashFamily,
    HashFamily,
    load_family,
    save_family,
)


def make_family(universe=500, capacity=1016, rng=11) -> ExtensibleHashFamily:
    shift = DEFAULT_CONFIG.shift_for_universe(capacity)
    return ExtensibleHashFamily.create(universe, capacity=capacity,
                                       shift=shift, rng=rng)


class TestGrowth:
    def test_grow_within_capacity_preserves_hashing(self):
        family = make_family()
        grown = family.grow(900)
        assert grown.universe_size == 900
        assert grown.capacity == family.capacity
        assert grown.shift == family.shift
        elements = np.arange(500, dtype=np.int64)
        for t in range(3):
            np.testing.assert_array_equal(family.permuted(t, elements),
                                          grown.permuted(t, elements))

    def test_grow_is_idempotent_at_current_size(self):
        family = make_family()
        assert family.grow(family.universe_size) == family

    def test_grow_beyond_capacity_raises(self):
        family = make_family()
        with pytest.raises(ValueError, match="capacity"):
            family.grow(family.capacity + 1)

    def test_grow_cannot_shrink(self):
        family = make_family()
        with pytest.raises(ValueError):
            family.grow(family.universe_size - 1)

    def test_range_universe_is_capacity(self):
        # Range floors must not move when the universe grows — they are
        # computed against the capacity, not the current universe.
        family = make_family()
        assert family.range_universe == family.capacity
        assert family.grow(900).range_universe == family.capacity

    def test_eager_family_range_universe_is_universe(self):
        eager = HashFamily.create(500,
                                  shift=DEFAULT_CONFIG.shift_for_universe(500),
                                  rng=11)
        assert eager.range_universe == 500


class TestDeterminism:
    def test_same_seed_same_capacity_same_family(self):
        assert make_family(rng=11) == make_family(rng=11)

    def test_grown_family_equals_fresh_family_at_larger_universe(self):
        # The invariant behind `repro ingest --append`: the family a grown
        # collection persists is exactly the family a from-scratch build of
        # the larger dataset creates from the same seed and capacity.
        grown = make_family(universe=500, rng=11).grow(900)
        fresh = make_family(universe=900, rng=11)
        assert grown == fresh

    def test_different_seed_differs(self):
        assert make_family(rng=11) != make_family(rng=12)

    def test_capacity_participates_in_equality(self):
        shift = DEFAULT_CONFIG.shift_for_universe(1016)
        a = ExtensibleHashFamily.create(500, capacity=1016, shift=shift, rng=5)
        b = ExtensibleHashFamily.create(500, capacity=508, shift=shift, rng=5)
        assert a != b


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        family = make_family()
        path = tmp_path / "family.npz"
        save_family(path, family)
        loaded = load_family(path)
        assert isinstance(loaded, ExtensibleHashFamily)
        assert loaded == family
        assert loaded.capacity == family.capacity
        elements = np.arange(500, dtype=np.int64)
        for t in range(3):
            np.testing.assert_array_equal(family.permuted(t, elements),
                                          loaded.permuted(t, elements))

    def test_save_load_roundtrip_after_growth(self, tmp_path):
        grown = make_family().grow(777)
        path = tmp_path / "family.npz"
        save_family(path, grown)
        loaded = load_family(path)
        assert loaded == grown
        assert loaded.universe_size == 777

    def test_eager_family_load_stays_eager(self, tmp_path):
        eager = HashFamily.create(500,
                                  shift=DEFAULT_CONFIG.shift_for_universe(500),
                                  rng=11)
        path = tmp_path / "family.npz"
        save_family(path, eager)
        loaded = load_family(path)
        assert not isinstance(loaded, ExtensibleHashFamily)
        assert loaded == eager


class TestResidentMemory:
    def test_lazy_family_is_o_items_not_o_universe(self):
        # A million-element capacity with an eager family would materialise
        # three ~8 MB permutation tables.  The extensible family must stay
        # proportional to the items actually hashed.
        capacity = 1 << 20
        shift = DEFAULT_CONFIG.shift_for_universe(capacity)
        probe = np.arange(256, dtype=np.int64)
        tracemalloc.start()
        try:
            family = ExtensibleHashFamily.create(
                1 << 20, capacity=capacity, shift=shift, rng=3)
            for t in range(3):
                family.permuted(t, probe)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert peak < 512 * 1024, (
            f"extensible family peaked at {peak} B for 256 probed items")
