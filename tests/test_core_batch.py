"""Tests for the vectorised batch pair-counting engine (repro.core.batch)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.batch import BatchPairCounter
from repro.core.collection import BatmapCollection
from repro.core.errors import LayoutError
from repro.core.hashing import HashFamily
from repro.core.intersection import count_common
from tests.conftest import random_sets


def _legacy_matrix(coll: BatmapCollection) -> np.ndarray:
    """The seed's per-pair loop over count_common (the reference the engine replaces)."""
    n = len(coll)
    out = np.zeros((n, n), dtype=np.int64)
    for i in range(n):
        out[i, i] = coll.batmap(i).stored_count
        for j in range(i + 1, n):
            c = count_common(coll.batmap(i), coll.batmap(j))
            out[i, j] = c
            out[j, i] = c
    return out


class TestEquivalence:
    def test_all_pairs_matches_per_pair_loop(self, rng):
        m = 1000
        sets = random_sets(rng, 10, m, max_size=220)
        coll = BatmapCollection.build(sets, m, rng=1)
        assert np.array_equal(coll.count_all_pairs(), _legacy_matrix(coll))

    def test_mixed_range_folding(self, rng):
        """Sets of wildly different sizes produce several width classes."""
        m = 4096
        sets = [np.arange(5), np.arange(40), np.arange(3, 700), np.arange(2, 2000),
                np.arange(0, 4096, 7), np.arange(12), np.arange(100, 160)]
        coll = BatmapCollection.build(sets, m, rng=2)
        widths = {coll.batmap(i).r for i in range(len(sets))}
        assert len(widths) >= 3          # genuinely folded comparisons
        assert np.array_equal(coll.count_all_pairs(), _legacy_matrix(coll))

    def test_unsorted_collection(self, rng):
        m = 512
        sets = [np.arange(100), np.arange(4), np.arange(30)]
        coll = BatmapCollection.build(sets, m, rng=0, sort_by_size=False)
        assert np.array_equal(coll.count_all_pairs(), _legacy_matrix(coll))

    def test_count_pair_delegates_to_engine(self, rng):
        m = 800
        sets = random_sets(rng, 6, m, max_size=150)
        coll = BatmapCollection.build(sets, m, rng=4)
        for i in range(6):
            for j in range(6):
                assert coll.count_pair(i, j) == count_common(coll.batmap(i), coll.batmap(j))

    @given(st.integers(0, 2**31), st.integers(2, 8))
    @settings(max_examples=12, deadline=None)
    def test_property_engine_matches_loop(self, seed, n_sets):
        rng = np.random.default_rng(seed)
        m = 600
        sets = [np.sort(rng.choice(m, size=int(rng.integers(0, 150)), replace=False))
                for _ in range(n_sets)]
        coll = BatmapCollection.build(sets, m, rng=seed % 11)
        assert np.array_equal(coll.count_all_pairs(), _legacy_matrix(coll))


class TestQueries:
    def _collection(self, rng, n=9, m=900):
        sets = random_sets(rng, n, m, max_size=200)
        return BatmapCollection.build(sets, m, rng=5), sets

    def test_count_pairs_list(self, rng):
        coll, _ = self._collection(rng)
        pairs = [(0, 8), (3, 3), (7, 1), (2, 5), (8, 0)]
        got = coll.batch_counter().count_pairs(pairs)
        expected = [count_common(coll.batmap(i), coll.batmap(j)) for i, j in pairs]
        assert got.tolist() == expected

    def test_count_pairs_empty(self, rng):
        coll, _ = self._collection(rng, n=3)
        assert coll.batch_counter().count_pairs(np.zeros((0, 2), dtype=np.int64)).size == 0

    def test_count_pairs_rejects_bad_shape(self, rng):
        coll, _ = self._collection(rng, n=3)
        with pytest.raises(ValueError):
            coll.batch_counter().count_pairs(np.array([1, 2, 3]))

    def test_count_cross_rectangle(self, rng):
        coll, _ = self._collection(rng)
        rows, cols = [0, 4, 6, 8], [1, 2, 3]
        block = coll.batch_counter().count_cross(rows, cols)
        full = coll.count_all_pairs()
        assert np.array_equal(block, full[np.ix_(rows, cols)])

    def test_top_k_ranking(self, rng):
        coll, _ = self._collection(rng)
        full = coll.count_all_pairs()
        n = full.shape[0]
        ranked = coll.batch_counter().top_k(4)
        assert len(ranked) == 4
        # descending counts, i < j, and counts agree with the matrix
        counts = [c for (_, c) in ranked]
        assert counts == sorted(counts, reverse=True)
        for (i, j), c in ranked:
            assert i < j
            assert full[i, j] == c
        # the top-1 really is the global off-diagonal maximum
        iu, ju = np.triu_indices(n, 1)
        assert ranked[0][1] == int(full[iu, ju].max())

    def test_top_k_larger_than_pair_count(self, rng):
        coll, _ = self._collection(rng, n=3)
        assert len(coll.batch_counter().top_k(100)) == 3  # C(3, 2)

    def test_counter_cached_on_collection(self, rng):
        coll, _ = self._collection(rng, n=3)
        assert coll.batch_counter() is coll.batch_counter()

    def test_small_block_words_chunking(self, rng):
        """Tiny chunk budget exercises the blocked path without changing results."""
        coll, _ = self._collection(rng)
        tiny = BatchPairCounter(coll, block_words=16)
        assert np.array_equal(tiny.count_all_pairs(), coll.count_all_pairs())


class TestValidation:
    def test_mixed_families_rejected(self, rng):
        m = 256
        a = BatmapCollection.build(random_sets(rng, 3, m), m, rng=0)
        b = BatmapCollection.build(random_sets(rng, 3, m), m, rng=9)
        mixed = BatmapCollection(
            a.family, a.config,
            a.batmaps_sorted[:2] + [b.batmaps_sorted[0]],
            np.arange(3), m,
        )
        with pytest.raises(LayoutError):
            BatchPairCounter(mixed)

    def test_structurally_equal_family_accepted(self, rng):
        """A pickled family copy is not `is`-identical but must still pass."""
        import pickle
        m = 256
        coll = BatmapCollection.build(random_sets(rng, 4, m), m, rng=0)
        clone = pickle.loads(pickle.dumps(coll.batmaps_sorted[0]))
        patched = BatmapCollection(
            coll.family, coll.config,
            [clone] + coll.batmaps_sorted[1:],
            coll.order.copy(), m,
        )
        counter = BatchPairCounter(patched)
        assert np.array_equal(counter.count_all_pairs(), coll.count_all_pairs())

    def test_compression_floor_rejected(self):
        # A family shifting one bit more than the config's floor assumes, so
        # small batmaps land below 2**shift and payload comparison is ambiguous.
        m = 4000
        family = HashFamily.create(m, shift=6, rng=0)
        coll = BatmapCollection.build([np.arange(6), np.arange(8)], m, family=family)
        assert coll.r0 < (1 << family.shift)
        with pytest.raises(LayoutError):
            BatchPairCounter(coll)
