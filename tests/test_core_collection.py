"""Tests for BatmapCollection: shared-family construction, sorting, device packing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.collection import BatmapCollection
from repro.core.config import BatmapConfig
from repro.core.hashing import HashFamily
from tests.conftest import random_sets


class TestBuild:
    def test_round_trip_counts(self, rng):
        m = 1000
        sets = random_sets(rng, 8, m, max_size=200)
        coll = BatmapCollection.build(sets, m, rng=0)
        for i in range(len(sets)):
            for j in range(i + 1, len(sets)):
                failed = set(coll.batmap(i).failed) | set(coll.batmap(j).failed)
                expected = len((set(sets[i].tolist()) & set(sets[j].tolist())) - failed)
                assert coll.count_pair(i, j) == expected

    def test_empty_collection_rejected(self):
        with pytest.raises(ValueError):
            BatmapCollection.build([], 10)

    def test_non_positive_universe_rejected(self):
        with pytest.raises(ValueError):
            BatmapCollection.build([[1]], 0)

    def test_len(self, rng):
        sets = random_sets(rng, 5, 100)
        assert len(BatmapCollection.build(sets, 100, rng=0)) == 5

    def test_sorted_by_width(self, rng):
        sets = [np.arange(50), np.arange(3), np.arange(200), np.arange(17)]
        coll = BatmapCollection.build(sets, 256, rng=0)
        widths = [coll.batmap_sorted(k).r for k in range(len(sets))]
        assert widths == sorted(widths)

    def test_order_maps_back_to_original(self, rng):
        sets = [np.arange(50), np.arange(3), np.arange(200), np.arange(17)]
        coll = BatmapCollection.build(sets, 256, rng=0)
        for original in range(len(sets)):
            assert coll.batmap(original).set_size == len(sets[original])

    def test_no_sorting_option(self):
        sets = [np.arange(50), np.arange(3)]
        coll = BatmapCollection.build(sets, 64, rng=0, sort_by_size=False)
        assert coll.batmap_sorted(0).set_size == 50

    def test_shared_family(self, rng):
        sets = random_sets(rng, 4, 128)
        coll = BatmapCollection.build(sets, 128, rng=0)
        fams = {id(coll.batmap(i).family) for i in range(4)}
        assert len(fams) == 1

    def test_explicit_family(self):
        cfg = BatmapConfig()
        m = 128
        family = HashFamily.create(m, shift=cfg.shift_for_universe(m), rng=9)
        coll = BatmapCollection.build([[1, 2], [2, 3]], m, family=family)
        assert coll.family is family
        assert coll.count_pair(0, 1) == 1

    def test_family_universe_mismatch_rejected(self):
        family = HashFamily.create(64, shift=0, rng=0)
        with pytest.raises(ValueError):
            BatmapCollection.build([[1]], 128, family=family)


class TestCountAllPairs:
    def test_matches_exact(self, rng):
        m = 400
        sets = random_sets(rng, 6, m, max_size=80)
        coll = BatmapCollection.build(sets, m, rng=1)
        matrix = coll.count_all_pairs()
        assert matrix.shape == (6, 6)
        assert np.array_equal(matrix, matrix.T)
        for i in range(6):
            assert matrix[i, i] == coll.batmap(i).stored_count
            for j in range(i + 1, 6):
                failed = set(coll.batmap(i).failed) | set(coll.batmap(j).failed)
                expected = len((set(sets[i].tolist()) & set(sets[j].tolist())) - failed)
                assert matrix[i, j] == expected

    def test_parallel_kwarg_matches_serial(self, rng):
        """parallel=True on a small collection falls back to the batch engine."""
        m = 400
        sets = random_sets(rng, 6, m, max_size=80)
        coll = BatmapCollection.build(sets, m, rng=1)
        assert np.array_equal(coll.count_all_pairs(parallel=True, workers=2),
                              coll.count_all_pairs())

    def test_parallel_kwarg_through_pool(self, rng, monkeypatch):
        import repro.parallel.executor as executor_module

        monkeypatch.setattr(executor_module, "PARALLEL_MIN_SETS", 1)
        m = 400
        sets = random_sets(rng, 8, m, max_size=80)
        coll = BatmapCollection.build(sets, m, rng=1)
        assert np.array_equal(coll.count_all_pairs(parallel=2),
                              coll.count_all_pairs())


class TestFailures:
    def test_failed_insertions_indexed_by_element(self):
        cfg = BatmapConfig(max_loop=5, seed=1)
        m = 4096
        # Large, heavily colliding sets with tight max_loop to force failures.
        sets = [np.arange(0, 2000, 1), np.arange(500, 2500, 1), np.arange(10)]
        coll = BatmapCollection.build(sets, m, config=cfg, rng=2)
        failures = coll.failed_insertions()
        total_failures = sum(len(coll.batmap(i).failed) for i in range(3))
        assert sum(len(v) for v in failures.values()) == total_failures
        for element, owners in failures.items():
            for owner in owners:
                assert element in coll.batmap(owner).failed


class TestDeviceBuffer:
    def test_offsets_and_widths_consistent(self, rng):
        m = 512
        sets = random_sets(rng, 7, m, max_size=120)
        coll = BatmapCollection.build(sets, m, rng=3)
        buf = coll.device_buffer()
        # every batmap starts at a 16-word (64-byte) aligned offset
        assert buf.offsets[0] == 0
        assert np.all(buf.offsets % 16 == 0)
        # offsets advance by the aligned (padded) width of the previous batmap
        padded = ((buf.widths + 15) // 16) * 16
        assert np.array_equal(np.diff(buf.offsets), padded[:-1])
        assert buf.words.size == int(padded.sum())
        # widths are 3 * r / 4 words for each sorted batmap
        for k in range(len(sets)):
            assert buf.widths[k] == 3 * coll.batmap_sorted(k).r // 4

    def test_buffer_cached(self, rng):
        sets = random_sets(rng, 3, 64)
        coll = BatmapCollection.build(sets, 64, rng=0)
        assert coll.device_buffer() is coll.device_buffer()

    def test_slice_returns_views_per_batmap(self, rng):
        m = 256
        sets = random_sets(rng, 5, m, max_size=60)
        coll = BatmapCollection.build(sets, m, rng=1)
        buf = coll.device_buffer()
        for k in range(5):
            assert buf.slice(k).size == int(buf.widths[k])

    def test_memory_bytes_matches_batmaps(self, rng):
        sets = random_sets(rng, 4, 128)
        coll = BatmapCollection.build(sets, 128, rng=0)
        assert coll.memory_bytes == sum(coll.batmap(i).memory_bytes for i in range(4))
        # the device buffer adds at most 63 alignment bytes per batmap
        assert coll.memory_bytes <= coll.device_buffer().nbytes
        assert coll.device_buffer().nbytes <= coll.memory_bytes + 64 * len(coll)

    def test_r0_is_smallest_range(self, rng):
        sets = [np.arange(3), np.arange(100)]
        coll = BatmapCollection.build(sets, 256, rng=0)
        assert coll.r0 == min(coll.batmap(0).r, coll.batmap(1).r)


class TestPropertyBased:
    @given(st.integers(0, 2**31), st.integers(2, 6))
    @settings(max_examples=15, deadline=None)
    def test_property_pairwise_counts(self, seed, n_sets):
        rng = np.random.default_rng(seed)
        m = 600
        sets = [np.sort(rng.choice(m, size=int(rng.integers(0, 150)), replace=False))
                for _ in range(n_sets)]
        coll = BatmapCollection.build(sets, m, rng=seed % 7)
        for i in range(n_sets):
            for j in range(i + 1, n_sets):
                failed = set(coll.batmap(i).failed) | set(coll.batmap(j).failed)
                expected = len((set(sets[i].tolist()) & set(sets[j].tolist())) - failed)
                assert coll.count_pair(i, j) == expected
