"""Tests for device specs, coalescing analysis and the memory models."""

import numpy as np
import pytest

from repro.core.errors import CapacityError, DeviceError, SharedMemoryError
from repro.gpu.coalescing import (
    analyze_access,
    segment_size_for_access,
    transactions_for_half_warp,
)
from repro.gpu.device import GTX_285, LAPTOP_CPU, XEON_5462, DeviceSpec
from repro.gpu.memory import GlobalMemory, MemoryTraffic, SharedMemory


class TestDeviceSpec:
    def test_gtx285_matches_paper(self):
        assert GTX_285.multiprocessors == 30
        assert GTX_285.cores_per_multiprocessor == 8
        assert GTX_285.total_cores == 240
        assert GTX_285.global_memory_bytes == 2**30
        assert GTX_285.memory_bandwidth_gbps == pytest.approx(159.0)
        assert GTX_285.shared_memory_per_mp_bytes == 16 * 1024

    def test_peak_rates_positive(self):
        for spec in (GTX_285, XEON_5462, LAPTOP_CPU):
            assert spec.peak_ops_per_second > 0
            assert spec.peak_bandwidth_bytes_per_second > 0
            assert spec.transfer_bandwidth_bytes_per_second > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceSpec(name="bad", multiprocessors=0, cores_per_multiprocessor=1,
                       clock_ghz=1.0, global_memory_bytes=1, memory_bandwidth_gbps=1.0,
                       shared_memory_per_mp_bytes=1)


class TestCoalescing:
    def test_segment_sizes(self):
        assert segment_size_for_access(1) == 32
        assert segment_size_for_access(2) == 64
        assert segment_size_for_access(4) == 64
        assert segment_size_for_access(8) == 128
        with pytest.raises(ValueError):
            segment_size_for_access(3)

    def test_contiguous_aligned_is_one_transaction(self):
        addresses = np.arange(16) * 4  # 16 consecutive words starting at 0
        assert transactions_for_half_warp(addresses, 4) == 1

    def test_contiguous_misaligned_is_two_transactions(self):
        addresses = np.arange(16) * 4 + 32  # crosses a 64-byte boundary
        assert transactions_for_half_warp(addresses, 4) == 2

    def test_scattered_accesses_cost_many_transactions(self):
        addresses = np.arange(16) * 1024
        assert transactions_for_half_warp(addresses, 4) == 16

    def test_empty_and_invalid(self):
        assert transactions_for_half_warp(np.array([]), 4) == 0
        with pytest.raises(ValueError):
            transactions_for_half_warp(np.array([-4]), 4)

    def test_analyze_access_efficiency(self):
        good = analyze_access(np.arange(64) * 4, 4)
        bad = analyze_access(np.arange(64) * 256, 4)
        assert good.efficiency == 1.0
        assert bad.efficiency < 0.1
        assert good.bytes_requested == bad.bytes_requested == 256
        assert bad.bytes_transferred > good.bytes_transferred

    def test_analyze_access_half_warp_grouping(self):
        report = analyze_access(np.arange(32) * 4, 4, half_warp=16)
        assert report.half_warps == 2
        assert report.transactions == 2


class TestGlobalMemory:
    def test_upload_download_roundtrip(self):
        mem = GlobalMemory(GTX_285)
        data = np.arange(100, dtype=np.uint32)
        mem.upload("buf", data)
        assert np.array_equal(mem.download("buf"), data)
        assert mem.host_to_device_bytes == data.nbytes
        assert mem.device_to_host_bytes == data.nbytes

    def test_capacity_enforced(self):
        small = DeviceSpec(name="tiny", multiprocessors=1, cores_per_multiprocessor=1,
                           clock_ghz=1.0, global_memory_bytes=64,
                           memory_bandwidth_gbps=1.0, shared_memory_per_mp_bytes=1024)
        mem = GlobalMemory(small)
        with pytest.raises(CapacityError):
            mem.upload("big", np.zeros(1000, dtype=np.uint8))
        with pytest.raises(CapacityError):
            mem.allocate("big", (1000,), np.uint8)

    def test_unknown_buffer_rejected(self):
        mem = GlobalMemory(GTX_285)
        with pytest.raises(DeviceError):
            mem.buffer("nope")

    def test_read_write_track_traffic(self):
        mem = GlobalMemory(GTX_285)
        mem.upload("buf", np.arange(64, dtype=np.uint32))
        out = mem.read("buf", np.arange(16))
        assert np.array_equal(out, np.arange(16))
        assert mem.traffic.bytes_read == 64
        assert mem.traffic.read_transactions == 1
        mem.write("buf", np.arange(16), np.zeros(16, dtype=np.uint32))
        assert mem.traffic.bytes_written == 64
        assert mem.traffic.total_transactions == 2
        assert mem.traffic.coalescing_efficiency == 1.0

    def test_free(self):
        mem = GlobalMemory(GTX_285)
        mem.upload("buf", np.zeros(4, dtype=np.uint8))
        mem.free("buf")
        with pytest.raises(DeviceError):
            mem.buffer("buf")

    def test_traffic_merge(self):
        a = MemoryTraffic(bytes_read=10, read_transactions=2, ideal_read_transactions=1)
        b = MemoryTraffic(bytes_written=20, write_transactions=4, ideal_write_transactions=2)
        a.merge(b)
        assert a.total_bytes == 30
        assert a.total_transactions == 6
        assert 0 < a.coalescing_efficiency <= 1.0


class TestSharedMemory:
    def test_alloc_and_store(self):
        shared = SharedMemory(GTX_285)
        arr = shared.alloc("tile", (16, 16), np.uint32)
        assert arr.shape == (16, 16)
        shared.store("tile", np.ones((16, 16), dtype=np.uint32))
        assert shared.get("tile")[0, 0] == 1
        assert shared.bytes_traffic == 1024
        assert shared.peak_bytes == 1024

    def test_capacity_enforced(self):
        shared = SharedMemory(GTX_285)
        with pytest.raises(SharedMemoryError):
            shared.alloc("huge", (1 << 20,), np.uint32)

    def test_double_alloc_rejected(self):
        shared = SharedMemory(GTX_285)
        shared.alloc("a", (4,), np.uint32)
        with pytest.raises(SharedMemoryError):
            shared.alloc("a", (4,), np.uint32)

    def test_store_shape_checked(self):
        shared = SharedMemory(GTX_285)
        shared.alloc("a", (4,), np.uint32)
        with pytest.raises(SharedMemoryError):
            shared.store("a", np.zeros(8, dtype=np.uint32))

    def test_unknown_name_rejected(self):
        with pytest.raises(SharedMemoryError):
            SharedMemory(GTX_285).get("missing")

    def test_reset_clears_allocations(self):
        shared = SharedMemory(GTX_285)
        shared.alloc("a", (4,), np.uint32)
        shared.reset()
        assert shared.bytes_allocated == 0
        shared.alloc("a", (4,), np.uint32)  # can re-allocate after reset
