"""Unit tests for the fault-injection registry (:mod:`repro.utils.faultpoints`).

The crash-recovery property test (``tests/test_crash_recovery.py``) trusts
this machinery completely — these tests pin the trust down: the registry is
closed, triggers are one-shot and hit-exact, recording enumerates ordered
kill sites, and the ``REPRO_FAULTPOINT`` environment surface arms a CLI
subprocess at import time and hard-exits with :data:`FAULT_EXIT_CODE`.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.utils import faultpoints as fp

SRC = str(Path(__file__).resolve().parents[1] / "src")


@pytest.fixture(autouse=True)
def _clean_state():
    fp.disarm()
    yield
    fp.disarm()


class TestRegistry:
    def test_unregistered_name_is_a_programming_error(self):
        with pytest.raises(ValueError, match="unregistered"):
            fp.faultpoint("no.such.point")
        with pytest.raises(ValueError, match="unregistered"):
            fp.arm("no.such.point")

    def test_every_registered_name_is_a_noop_when_disarmed(self):
        for name in fp.KNOWN_FAULTPOINTS:
            fp.faultpoint(name)  # must not raise

    def test_arm_validates_mode_and_hit(self):
        with pytest.raises(ValueError, match="mode"):
            fp.arm("commit.fsync", mode="explode")
        with pytest.raises(ValueError, match="hit"):
            fp.arm("commit.fsync", hit=0)


class TestTrigger:
    def test_fires_at_exact_hit_count(self):
        fp.arm("commit.rename", hit=3)
        fp.faultpoint("commit.rename")
        fp.faultpoint("commit.rename")
        with pytest.raises(fp.InjectedFault) as excinfo:
            fp.faultpoint("commit.rename")
        assert excinfo.value.name == "commit.rename"
        assert excinfo.value.hit == 3

    def test_trigger_is_one_shot(self):
        fp.arm("commit.manifest")
        with pytest.raises(fp.InjectedFault):
            fp.faultpoint("commit.manifest")
        fp.faultpoint("commit.manifest")  # disarmed by the first firing

    def test_other_names_do_not_advance_the_counter(self):
        fp.arm("delete.tombstones", hit=1)
        fp.faultpoint("commit.fsync")
        fp.faultpoint("compact.merge")
        with pytest.raises(fp.InjectedFault):
            fp.faultpoint("delete.tombstones")

    def test_armed_context_disarms_even_without_firing(self):
        with fp.armed("commit.fsync", hit=99):
            fp.faultpoint("commit.fsync")
        fp.faultpoint("commit.fsync")  # no trigger left behind


class TestRecording:
    def test_records_ordered_hits_and_numbers_sites(self):
        with fp.recording() as rec:
            fp.faultpoint("commit.rename")
            fp.faultpoint("commit.rename")
            fp.faultpoint("commit.manifest")
        assert rec.hits == ["commit.rename", "commit.rename", "commit.manifest"]
        assert rec.sites() == [("commit.rename", 1), ("commit.rename", 2),
                               ("commit.manifest", 1)]

    def test_recording_stops_at_exit(self):
        with fp.recording() as rec:
            fp.faultpoint("commit.fsync")
        fp.faultpoint("commit.fsync")
        assert rec.hits == ["commit.fsync"]


class TestEnvironmentSurface:
    def _run(self, code: str, env_extra: dict) -> subprocess.CompletedProcess:
        env = dict(os.environ, PYTHONPATH=SRC, **env_extra)
        return subprocess.run([sys.executable, "-c", code],
                              env=env, capture_output=True, text=True,
                              timeout=60)

    def test_env_arms_exit_mode_by_default(self):
        proc = self._run(
            "from repro.utils.faultpoints import faultpoint\n"
            "faultpoint('commit.manifest')\n"
            "print('survived')",
            {"REPRO_FAULTPOINT": "commit.manifest"})
        assert proc.returncode == fp.FAULT_EXIT_CODE
        assert "survived" not in proc.stdout

    def test_env_hit_selects_the_kth_call(self):
        proc = self._run(
            "from repro.utils.faultpoints import faultpoint\n"
            "faultpoint('commit.rename')\n"
            "print('one down')\n"
            "faultpoint('commit.rename')",
            {"REPRO_FAULTPOINT": "commit.rename", "REPRO_FAULTPOINT_HIT": "2"})
        assert proc.returncode == fp.FAULT_EXIT_CODE
        assert "one down" in proc.stdout

    def test_env_raise_mode(self):
        proc = self._run(
            "from repro.utils.faultpoints import faultpoint, InjectedFault\n"
            "try:\n"
            "    faultpoint('commit.fsync')\n"
            "except InjectedFault as exc:\n"
            "    print('caught', exc.name)",
            {"REPRO_FAULTPOINT": "commit.fsync",
             "REPRO_FAULTPOINT_MODE": "raise"})
        assert proc.returncode == 0
        assert "caught commit.fsync" in proc.stdout

    def test_env_rejects_unregistered_name_at_import(self):
        proc = self._run("import repro.utils.faultpoints",
                         {"REPRO_FAULTPOINT": "bogus.point"})
        assert proc.returncode != 0
        assert "bogus.point" in proc.stderr
