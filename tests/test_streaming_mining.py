"""Out-of-core mining pipeline: bit-identity with the in-memory path, CLI surface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.core.config import BatmapConfig
from repro.core.errors import DataFormatError
from repro.core.sharded import fixed_resident_bytes
from repro.datasets.fimi_io import read_fimi, write_fimi
from repro.datasets.synthetic import generate_density_instance
from repro.mining.pair_mining import BatmapPairMiner
from repro.mining.preprocess import preprocess_streaming


def write_instance(tmp_path, n_items=36, density=0.2, total=4000, seed=0,
                   name="db.fimi"):
    db = generate_density_instance(n_items, density, total, rng=seed)
    path = tmp_path / name
    write_fimi(db, path)
    return path, db


def stream_budget(db, extra=400_000):
    return fixed_resident_bytes(db.n_transactions, db.n_items) + extra


class TestMineStreamIdentity:
    def test_bit_identical_to_in_memory(self, tmp_path):
        path, db = write_instance(tmp_path)
        miner = BatmapPairMiner(compute="auto")
        mem = miner.mine(read_fimi(path), min_support=3, rng=4)
        stream = miner.mine_stream(path, min_support=3, rng=4,
                                   memory_budget=stream_budget(db))
        np.testing.assert_array_equal(stream.supports.counts, mem.supports.counts)
        np.testing.assert_array_equal(stream.supports.item_ids, mem.supports.item_ids)
        assert stream.failed_insertions == mem.failed_insertions
        assert (stream.supports.frequent_pairs(3)
                == mem.supports.frequent_pairs(3))
        assert stream.count_backend.startswith("sharded(")
        assert stream.build_backend.startswith("sharded(")

    def test_identity_with_failed_insertions_repair(self, tmp_path):
        # range_multiplier 1.0 forces cuckoo failures -> exercises the
        # streaming repair pass (sparse transaction extraction)
        path, db = write_instance(tmp_path, n_items=24, density=0.35,
                                  total=6000, seed=7)
        config = BatmapConfig(range_multiplier=1.0, seed=11)
        miner = BatmapPairMiner(compute="auto", config=config)
        mem = miner.mine(read_fimi(path), min_support=2, rng=5)
        stream = miner.mine_stream(path, min_support=2, rng=5,
                                   memory_budget=stream_budget(db))
        assert mem.failed_insertions > 0, "instance must actually fail insertions"
        assert stream.failed_insertions == mem.failed_insertions
        np.testing.assert_array_equal(stream.supports.counts, mem.supports.counts)

    def test_identity_without_filtering(self, tmp_path):
        path, db = write_instance(tmp_path, seed=3)
        miner = BatmapPairMiner(compute="auto")
        mem = miner.mine(read_fimi(path), min_support=1, rng=1)
        stream = miner.mine_stream(path, min_support=1, rng=1,
                                   memory_budget=stream_budget(db))
        np.testing.assert_array_equal(stream.supports.counts, mem.supports.counts)

    def test_chunk_boundaries_cannot_change_results(self, tmp_path):
        # one-transaction chunks split every tidlist across chunk boundaries
        path, db = write_instance(tmp_path, n_items=16, total=1500, seed=9)
        budget = stream_budget(db)
        fine = preprocess_streaming(path, tmp_path / "fine", memory_budget=budget,
                                    min_support=2, rng=2, chunk_transactions=1)
        coarse = preprocess_streaming(path, tmp_path / "coarse",
                                      memory_budget=budget,
                                      min_support=2, rng=2,
                                      chunk_transactions=100_000)
        np.testing.assert_array_equal(
            fine.collection.count_all_pairs(),
            coarse.collection.count_all_pairs(),
        )

    def test_spill_dir_kept_when_caller_owns_it(self, tmp_path):
        path, db = write_instance(tmp_path, seed=2)
        spill = tmp_path / "spill"
        miner = BatmapPairMiner(compute="host")
        miner.mine_stream(path, min_support=2, rng=0,
                          memory_budget=stream_budget(db), spill_dir=spill)
        assert (spill / "manifest.json").exists()

    def test_device_compute_rejected(self, tmp_path):
        path, _ = write_instance(tmp_path)
        with pytest.raises(ValueError, match="streaming mining"):
            BatmapPairMiner(compute="device").mine_stream(path, memory_budget="64M")

    def test_one_shot_line_iterator_source_is_buffered(self, tmp_path):
        # the pipeline makes several passes; a generator source must not
        # silently parse as empty on the second one
        path, db = write_instance(tmp_path, n_items=12, total=600, seed=4)
        lines = (line for line in path.read_text().splitlines())
        miner = BatmapPairMiner(compute="host")
        mem = miner.mine(read_fimi(path), min_support=2, rng=3)
        stream = miner.mine_stream(lines, min_support=2, rng=3,
                                   memory_budget=stream_budget(db))
        np.testing.assert_array_equal(stream.supports.counts, mem.supports.counts)

    def test_budget_accepts_size_strings(self, tmp_path):
        path, _ = write_instance(tmp_path, n_items=12, total=600, seed=5)
        report = BatmapPairMiner(compute="host").mine_stream(
            path, min_support=2, rng=0, memory_budget="64M")
        assert report.batmap_bytes > 0


class TestPreprocessStreamingErrors:
    def test_empty_input_raises(self, tmp_path):
        path = tmp_path / "empty.fimi"
        path.write_text("# nothing\n")
        with pytest.raises(DataFormatError, match="no transactions"):
            preprocess_streaming(path, tmp_path / "s", memory_budget="64M")

    def test_no_frequent_items_raises(self, tmp_path):
        path = tmp_path / "thin.fimi"
        path.write_text("1 2\n3 4\n")
        with pytest.raises(DataFormatError, match="min_support"):
            preprocess_streaming(path, tmp_path / "s", memory_budget="64M",
                                 min_support=99)

    def test_too_small_budget_raises_with_accounting(self, tmp_path):
        path, _ = write_instance(tmp_path)
        with pytest.raises(ValueError, match="irreducibly resident"):
            preprocess_streaming(path, tmp_path / "s", memory_budget=1024)


class TestCliStreaming:
    def run_cli(self, argv, capsys):
        code = main(argv)
        return code, capsys.readouterr().out

    def test_stream_matches_in_memory_pairs_file(self, tmp_path, capsys):
        path, _ = write_instance(tmp_path, seed=6)
        mem_pairs = tmp_path / "mem.txt"
        stream_pairs = tmp_path / "stream.txt"
        code, _ = self.run_cli(["mine", str(path), "--min-support", "3",
                                "--compute", "auto",
                                "--pairs-out", str(mem_pairs)], capsys)
        assert code == 0
        code, out = self.run_cli(["mine", str(path), "--min-support", "3",
                                  "--stream", "--memory-budget", "64M",
                                  "--pairs-out", str(stream_pairs)], capsys)
        assert code == 0
        assert "count backend: sharded(" in out
        assert mem_pairs.read_text() == stream_pairs.read_text()

    def test_budget_demotes_without_stream_flag(self, tmp_path, capsys):
        # transaction-heavy shape: packed bytes dominate the fixed residents,
        # so a budget exists that is over the floor yet under the buffer size
        path, db = write_instance(tmp_path, n_items=30, density=0.5,
                                  total=30_000, seed=8)
        budget = stream_budget(db, extra=60_000)
        code, out = self.run_cli(["mine", str(path), "--min-support", "2",
                                  "--memory-budget", str(budget)], capsys)
        assert code == 0
        assert "demoting to the sharded pipeline" in out
        assert "streamed" in out

    def test_big_budget_stays_in_memory(self, tmp_path, capsys):
        path, _ = write_instance(tmp_path, seed=8)
        code, out = self.run_cli(["mine", str(path), "--min-support", "2",
                                  "--memory-budget", "2G",
                                  "--compute", "auto"], capsys)
        assert code == 0
        assert "demoting" not in out
        assert "loaded" in out

    def test_stream_requires_batmap_pair_mining(self, tmp_path, capsys):
        path, _ = write_instance(tmp_path)
        code, out = self.run_cli(["mine", str(path), "--stream",
                                  "--engine", "eclat"], capsys)
        assert code == 2
        code, out = self.run_cli(["mine", str(path), "--stream",
                                  "--max-size", "3"], capsys)
        assert code == 2

    def test_malformed_input_is_one_error_line(self, tmp_path, capsys):
        path = tmp_path / "bad.fimi"
        path.write_text("1 2\noops\n")
        code, out = self.run_cli(["mine", str(path)], capsys)
        assert code == 2
        assert "error: bad: line 2" in out
        code, out = self.run_cli(["mine", str(path), "--stream",
                                  "--memory-budget", "64M"], capsys)
        assert code == 2
        assert "error:" in out

    def test_budget_configuration_errors_are_clean(self, tmp_path, capsys):
        path, _ = write_instance(tmp_path)
        code, out = self.run_cli(["mine", str(path), "--stream",
                                  "--memory-budget", "16K"], capsys)
        assert code == 2
        assert "error:" in out and "irreducibly resident" in out
        code, out = self.run_cli(["mine", str(path), "--stream",
                                  "--memory-budget", "64Q"], capsys)
        assert code == 2
        assert "error:" in out and "cannot parse" in out

    def test_intersect_set_file_error(self, tmp_path, capsys):
        a = tmp_path / "a.txt"
        b = tmp_path / "b.txt"
        a.write_text("1 2 3")
        b.write_text("2 three")
        code, out = self.run_cli(["intersect", str(a), str(b)], capsys)
        assert code == 2
        assert "non-integer token" in out
