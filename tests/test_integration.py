"""Cross-module integration tests.

These exercise whole user-visible workflows end to end on realistic data:
Quest-style market baskets, the WebDocs surrogate, FIMI round-trips through
the mining pipeline, and agreement between every pair-mining engine the
library ships.
"""

import io

import numpy as np
import pytest

from repro.baselines.apriori import AprioriMiner
from repro.baselines.bitmap import BitmapIndex
from repro.baselines.eclat import EclatMiner
from repro.baselines.fpgrowth import FPGrowthMiner
from repro.core.collection import BatmapCollection
from repro.datasets.fimi_io import parse_fimi_lines, write_fimi
from repro.datasets.ibm_quest import generate_quest_dataset, QuestParameters
from repro.datasets.webdocs import generate_webdocs_like
from repro.kernels.driver import run_batmap_pair_counts, run_bitmap_pair_counts
from repro.mining.pair_mining import BatmapPairMiner


class TestAllEnginesAgree:
    """Every engine in the library must report identical frequent pairs."""

    @pytest.mark.parametrize("min_support", [2, 5])
    def test_quest_market_baskets(self, min_support):
        db = generate_quest_dataset(
            QuestParameters(n_items=60, n_transactions=150, avg_transaction_length=8.0),
            rng=0)
        n = db.n_items
        batmap = BatmapPairMiner(tile_size=64).mine_pairs(db, n, min_support, rng=0)
        apriori = AprioriMiner().mine_pairs(db.transactions, n, min_support)
        fp = FPGrowthMiner().mine_pairs(db.transactions, n, min_support)
        eclat = EclatMiner().mine_pairs(db.transactions, n, min_support)
        assert batmap == apriori == fp == eclat

    def test_webdocs_surrogate(self):
        db = generate_webdocs_like(60, vocabulary_size=2_000, mean_length=25.0, rng=1)
        filtered, _ = db.filter_by_support(2)
        batmap = BatmapPairMiner(tile_size=128).mine_pairs(filtered, filtered.n_items, 2, rng=0)
        fp = FPGrowthMiner().mine_pairs(filtered.transactions, filtered.n_items, 2)
        assert batmap == fp

    def test_device_kernels_agree_with_each_other(self):
        """Batmap and bitmap kernels must produce the same pair counts."""
        db = generate_quest_dataset(
            QuestParameters(n_items=40, n_transactions=120, avg_transaction_length=6.0),
            rng=2)
        tidlists = db.tidlists()
        m = db.n_transactions
        coll = BatmapCollection.build(tidlists, m, rng=0)
        batmap_run = run_batmap_pair_counts(coll, tile_size=64)
        bitmap_run = run_bitmap_pair_counts(BitmapIndex.from_sets(tidlists, m), tile_size=64)
        remapped = np.zeros_like(batmap_run.counts)
        remapped[np.ix_(coll.order, coll.order)] = batmap_run.counts
        if not any(coll.batmap(i).failed for i in range(len(coll))):
            off_diag = ~np.eye(len(coll), dtype=bool)
            assert np.array_equal(remapped[off_diag], bitmap_run.counts[off_diag])


class TestFimiWorkflow:
    def test_mine_pairs_from_fimi_text(self):
        """A user can go FIMI text -> database -> mining -> pairs in a few lines."""
        text = "\n".join(
            " ".join(str(x) for x in row)
            for row in [[0, 1, 2], [1, 2], [0, 2, 3], [2, 3], [0, 1, 2, 3]]
        )
        db = parse_fimi_lines(io.StringIO(text).read().splitlines())
        report = BatmapPairMiner(tile_size=16).mine(db, min_support=2, rng=0)
        pairs = report.supports.frequent_pairs(2)
        expected = AprioriMiner().mine_pairs(db.transactions, db.n_items, 2)
        assert pairs == expected

    def test_roundtrip_preserves_mining_results(self, tmp_path):
        db = generate_quest_dataset(
            QuestParameters(n_items=30, n_transactions=80, avg_transaction_length=5.0),
            rng=3)
        path = tmp_path / "quest.fimi"
        write_fimi(db, path)
        loaded = parse_fimi_lines(path.read_text().splitlines(), n_items=db.n_items)
        original = FPGrowthMiner().mine_pairs(db.transactions, db.n_items, 2)
        reloaded = FPGrowthMiner().mine_pairs(loaded.transactions, loaded.n_items, 2)
        assert original == reloaded


class TestScaleRobustness:
    def test_larger_universe_uses_feistel_permutations(self):
        """Collections over multi-million-element universes must still be correct."""
        from repro.core.config import BatmapConfig
        from repro.core.hashing import FeistelPermutation, HashFamily

        m = 5_000_000
        cfg = BatmapConfig()
        family = HashFamily.create(m, shift=cfg.shift_for_universe(m), rng=0,
                                   force_permutation="feistel")
        assert all(isinstance(p, FeistelPermutation) for p in family.permutations)
        rng = np.random.default_rng(0)
        sets = [np.sort(rng.choice(m, size=400, replace=False)) for _ in range(4)]
        coll = BatmapCollection.build(sets, m, family=family)
        for i in range(4):
            for j in range(i + 1, 4):
                failed = set(coll.batmap(i).failed) | set(coll.batmap(j).failed)
                expected = len((set(sets[i].tolist()) & set(sets[j].tolist())) - failed)
                assert coll.count_pair(i, j) == expected

    def test_empty_and_singleton_sets_in_collection(self):
        coll = BatmapCollection.build([[], [7], [7, 8], list(range(50))], 64, rng=0)
        result = run_batmap_pair_counts(coll, tile_size=4)
        remapped = np.zeros_like(result.counts)
        remapped[np.ix_(coll.order, coll.order)] = result.counts
        assert remapped[0, 1] == 0
        assert remapped[1, 2] == 1
        assert remapped[2, 3] == 2
        assert remapped[0, 3] == 0
