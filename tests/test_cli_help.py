"""Snapshot tests for the CLI ``--help`` surface.

Every subcommand's ``format_help()`` (plus the top-level parser's) must
match its checked-in snapshot under ``tests/data/cli_help/``.  A failing
test means the CLI changed: rerun ``python tools/update_cli_snapshots.py``
and review the snapshot diff together with any docs that quote the help
text (README quickstarts, docs/serving.md).

Rendering is normalised exactly as the regenerator normalises it (fixed
width, Python 3.9 heading rewrite), so the snapshots are identical across
the CI matrix.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

_spec = importlib.util.spec_from_file_location(
    "update_cli_snapshots", REPO_ROOT / "tools" / "update_cli_snapshots.py")
snapshots = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(snapshots)

SOURCES = snapshots.snapshot_sources()


@pytest.mark.parametrize("name", sorted(SOURCES))
def test_help_matches_snapshot(name):
    path = snapshots.SNAPSHOT_DIR / f"{name}.txt"
    assert path.exists(), (
        f"no snapshot for `repro {name}` — run "
        "`python tools/update_cli_snapshots.py`")
    rendered = snapshots.render_help(SOURCES[name])
    assert rendered == path.read_text(), (
        f"`repro {name}` --help drifted from its snapshot; if the change is "
        "intentional run `python tools/update_cli_snapshots.py` and commit "
        "the diff")


def test_no_orphan_snapshots():
    """Every snapshot file corresponds to a live subcommand."""
    on_disk = {p.stem for p in snapshots.SNAPSHOT_DIR.glob("*.txt")}
    assert on_disk == set(SOURCES), (
        "snapshot files and CLI subcommands disagree — run "
        "`python tools/update_cli_snapshots.py`")


def test_every_subcommand_is_snapshotted():
    """The parametrised set covers the full subparser table."""
    from repro.cli import subcommand_parsers

    assert set(subcommand_parsers()) | {snapshots.TOP_LEVEL} == set(SOURCES)
