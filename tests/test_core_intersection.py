"""Tests for batmap intersection counting — the paper's central claim.

The key property: for two sets represented as batmaps built from the same
hash family, the data-independent element-wise comparison counts exactly
``|S_i ∩ S_j|`` (restricted to successfully stored elements), for equal and
unequal ranges alike.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.batmap import build_batmap
from repro.core.config import BatmapConfig
from repro.core.errors import LayoutError
from repro.core.hashing import HashFamily
from repro.core.intersection import (
    count_common,
    count_common_bytes,
    count_common_packed,
    exact_intersection_size,
)


def make_family(m: int, seed: int = 0) -> HashFamily:
    cfg = BatmapConfig()
    return HashFamily.create(m, shift=cfg.shift_for_universe(m), rng=seed)


class TestExactIntersection:
    def test_basic(self):
        assert exact_intersection_size([1, 2, 3], [2, 3, 4]) == 2

    def test_disjoint(self):
        assert exact_intersection_size([1, 2], [3, 4]) == 0

    def test_duplicates_ignored(self):
        assert exact_intersection_size([1, 1, 2], [1, 2, 2]) == 2

    def test_empty(self):
        assert exact_intersection_size([], [1, 2]) == 0


class TestCountCommon:
    def _build_pair(self, set_a, set_b, m, seed=0):
        family = make_family(m, seed)
        a = build_batmap(set_a, m, family=family)
        b = build_batmap(set_b, m, family=family)
        return a, b

    def test_identical_sets(self):
        s = np.arange(0, 100, 3)
        a, b = self._build_pair(s, s, 256)
        assert count_common(a, b) == s.size

    def test_disjoint_sets(self):
        a, b = self._build_pair(np.arange(0, 50), np.arange(50, 100), 256)
        assert count_common(a, b) == 0

    def test_partial_overlap(self):
        a, b = self._build_pair([1, 5, 9, 20, 77], [5, 20, 99, 200], 256)
        assert count_common(a, b) == 2

    def test_empty_vs_nonempty(self):
        a, b = self._build_pair([], [1, 2, 3], 64)
        assert count_common(a, b) == 0

    def test_symmetric(self):
        a, b = self._build_pair(np.arange(0, 64, 2), np.arange(0, 64, 3), 128)
        assert count_common(a, b) == count_common(b, a)

    def test_unequal_ranges(self):
        """The larger batmap folds onto the smaller one by mod r_small."""
        m = 4096
        family = make_family(m, 1)
        small = build_batmap(np.arange(10), m, family=family)
        large = build_batmap(np.arange(5, 2000, 1), m, family=family)
        assert large.r > small.r
        expected = exact_intersection_size(np.arange(10), np.arange(5, 2000))
        assert count_common(small, large) == expected

    def test_byte_and_packed_paths_agree(self):
        m = 2048
        family = make_family(m, 2)
        rng = np.random.default_rng(0)
        a = build_batmap(rng.choice(m, 300, replace=False), m, family=family)
        b = build_batmap(rng.choice(m, 700, replace=False), m, family=family)
        assert count_common_bytes(a, b) == count_common_packed(a, b)

    def test_different_families_rejected(self):
        m = 256
        a = build_batmap([1, 2, 3], m, family=make_family(m, 1))
        b = build_batmap([1, 2, 3], m, family=make_family(m, 2))
        with pytest.raises(LayoutError):
            count_common(a, b)

    def test_below_compression_floor_rejected(self):
        """Ranges below 2**shift would make payload comparison ambiguous."""
        m = 100_000  # needs a non-trivial shift
        cfg = BatmapConfig()
        shift = cfg.shift_for_universe(m)
        assert shift > 0
        family = HashFamily.create(m, shift=shift, rng=0)
        a = build_batmap([1, 2, 3], m, family=family, r=4)
        b = build_batmap([2, 3, 4], m, family=family, r=4)
        with pytest.raises(LayoutError):
            count_common_bytes(a, b)

    def test_counts_exclude_failed_elements(self):
        m = 2048
        cfg = BatmapConfig(max_loop=6)
        family = HashFamily.create(m, shift=cfg.shift_for_universe(m), rng=5)
        elements = np.arange(400)
        a = build_batmap(elements, m, family=family, config=cfg, r=256)
        b = build_batmap(elements, m, family=family, config=cfg, r=1024)
        assert a.failed or b.failed  # the squeezed range forces failures
        failed = set(a.failed) | set(b.failed)
        expected = len([x for x in elements.tolist() if x not in failed])
        assert count_common(a, b) == expected

    @given(st.integers(0, 2**31), st.integers(0, 150), st.integers(0, 150))
    @settings(max_examples=40, deadline=None)
    def test_property_counts_are_exact(self, seed, size_a, size_b):
        """Randomised end-to-end check of the core claim of the paper."""
        rng = np.random.default_rng(seed)
        m = 1500
        family = make_family(m, seed % 11)
        set_a = np.sort(rng.choice(m, size=min(size_a, m), replace=False))
        set_b = np.sort(rng.choice(m, size=min(size_b, m), replace=False))
        a = build_batmap(set_a, m, family=family)
        b = build_batmap(set_b, m, family=family)
        if a.failed or b.failed:  # extremely rare at default ranges
            failed = set(a.failed) | set(b.failed)
            expected = len(set(set_a.tolist()) & set(set_b.tolist()) - failed)
        else:
            expected = exact_intersection_size(set_a, set_b)
        assert count_common(a, b) == expected
        assert count_common_bytes(a, b) == expected


class TestCrossProcessFamilies:
    """Regression: batmaps whose family was pickled (e.g. built in a worker
    process) must remain comparable — equality is structural, not identity."""

    def test_count_common_across_pickled_family(self):
        import pickle
        m = 1024
        family = make_family(m, seed=2)
        worker_family = pickle.loads(pickle.dumps(family))
        assert worker_family is not family
        a = build_batmap(np.arange(0, 200, 2), m, family=family)
        b = build_batmap(np.arange(0, 200, 3), m, family=worker_family)
        expected = exact_intersection_size(np.arange(0, 200, 2), np.arange(0, 200, 3))
        assert count_common(a, b) == expected
        assert count_common_bytes(a, b) == expected

    def test_pickled_batmap_comparable_to_original(self):
        import pickle
        m = 512
        family = make_family(m, seed=6)
        a = build_batmap(np.arange(64), m, family=family)
        b = pickle.loads(pickle.dumps(build_batmap(np.arange(32, 96), m, family=family)))
        assert count_common(a, b) == 32

    def test_truly_different_families_still_rejected(self):
        m = 512
        a = build_batmap(np.arange(10), m, family=make_family(m, seed=0))
        b = build_batmap(np.arange(10), m, family=make_family(m, seed=1))
        with pytest.raises(LayoutError):
            count_common(a, b)
