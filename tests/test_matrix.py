"""Tests for sparse boolean matrices, multiplication and join-project."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.matrix.boolean import SparseBooleanMatrix
from repro.matrix.joinproject import Relation, join_project, join_project_counting
from repro.matrix.multiply import (
    multiply_batmap,
    multiply_batmap_device,
    multiply_dense,
    multiply_merge,
)


class TestSparseBooleanMatrix:
    def test_from_dense_roundtrip(self):
        dense = np.array([[1, 0, 1], [0, 0, 0], [1, 1, 1]], dtype=bool)
        m = SparseBooleanMatrix.from_dense(dense)
        assert np.array_equal(m.to_dense(), dense)
        assert m.nnz == 5
        assert m.density == pytest.approx(5 / 9)

    def test_transpose(self):
        dense = np.array([[1, 0], [1, 1], [0, 1]], dtype=bool)
        m = SparseBooleanMatrix.from_dense(dense)
        assert np.array_equal(m.transpose().to_dense(), dense.T)

    def test_column_sets(self):
        m = SparseBooleanMatrix(2, 3, [np.array([0, 2]), np.array([2])])
        cols = m.column_sets()
        assert cols[0].tolist() == [0]
        assert cols[1].tolist() == []
        assert cols[2].tolist() == [0, 1]

    def test_validation(self):
        with pytest.raises(ValueError):
            SparseBooleanMatrix(0, 3)
        with pytest.raises(ValueError):
            SparseBooleanMatrix(2, 3, [np.array([3]), np.array([])])
        with pytest.raises(ValueError):
            SparseBooleanMatrix(2, 3, [np.array([0])])  # wrong row count
        with pytest.raises(ValueError):
            SparseBooleanMatrix.from_dense(np.zeros(3))

    def test_random_density(self):
        m = SparseBooleanMatrix.random(50, 50, 0.2, rng=0)
        assert 0.1 < m.density < 0.3

    def test_equality(self):
        a = SparseBooleanMatrix(1, 3, [np.array([0, 1])])
        b = SparseBooleanMatrix(1, 3, [np.array([1, 0])])
        c = SparseBooleanMatrix(1, 3, [np.array([2])])
        assert a == b
        assert a != c


class TestMultiply:
    def _pair(self, seed, shape_a=(12, 30), shape_b=(30, 9), density=0.15):
        a = SparseBooleanMatrix.random(*shape_a, density, rng=seed)
        b = SparseBooleanMatrix.random(*shape_b, density, rng=seed + 1)
        return a, b

    def test_merge_matches_dense(self):
        a, b = self._pair(0)
        assert np.array_equal(multiply_merge(a, b), multiply_dense(a, b))

    def test_batmap_matches_dense(self):
        a, b = self._pair(1)
        assert np.array_equal(multiply_batmap(a, b, rng=0), multiply_dense(a, b))

    def test_batmap_device_matches_dense(self):
        a, b = self._pair(2)
        product, seconds = multiply_batmap_device(a, b, rng=0, tile_size=16)
        assert np.array_equal(product, multiply_dense(a, b))
        assert seconds > 0

    def test_shape_mismatch_rejected(self):
        a = SparseBooleanMatrix.random(4, 5, 0.5, rng=0)
        b = SparseBooleanMatrix.random(6, 3, 0.5, rng=1)
        for fn in (multiply_dense, multiply_merge):
            with pytest.raises(ValueError):
                fn(a, b)
        with pytest.raises(ValueError):
            multiply_batmap(a, b)

    @given(st.integers(0, 2**31), st.floats(0.05, 0.4))
    @settings(max_examples=10, deadline=None)
    def test_property_batmap_product_exact(self, seed, density):
        a = SparseBooleanMatrix.random(8, 20, density, rng=seed)
        b = SparseBooleanMatrix.random(20, 6, density, rng=seed + 7)
        assert np.array_equal(multiply_batmap(a, b, rng=seed % 13), multiply_dense(a, b))

    def test_rejects_unknown_compute(self):
        a, b = self._pair(3)
        with pytest.raises(ValueError):
            multiply_batmap(a, b, compute="quantum")

    @pytest.mark.parametrize("compute", ["auto", "host", "batch", "parallel"])
    def test_all_backends_match_dense(self, compute):
        a, b = self._pair(4)
        kwargs = {"workers": 2} if compute == "parallel" else {}
        assert np.array_equal(multiply_batmap(a, b, rng=0, compute=compute, **kwargs),
                              multiply_dense(a, b))

    def test_wide_payload_layout_routes_to_host(self):
        """payload_bits > 7 has no packed form; the planner must still produce
        an exact product through the per-pair reference."""
        from repro.core.config import BatmapConfig

        a, b = self._pair(5, shape_a=(6, 15), shape_b=(15, 5))
        product = multiply_batmap(a, b, rng=0,
                                  config=BatmapConfig(payload_bits=9))
        assert np.array_equal(product, multiply_dense(a, b))


class TestRepairCrossProduct:
    """The vectorised failed-insertion repair (one np.isin pass per side)."""

    def _overfull_config(self):
        from repro.core.config import BatmapConfig

        # range_multiplier 1.0 + tiny MaxLoop provoke failed insertions
        return BatmapConfig(range_multiplier=1.0, max_loop=4)

    @given(st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_property_repair_is_exact_under_failures(self, seed):
        config = self._overfull_config()
        a = SparseBooleanMatrix.random(10, 40, 0.35, rng=seed)
        b = SparseBooleanMatrix.random(40, 8, 0.35, rng=seed + 1)
        product = multiply_batmap(a, b, rng=seed % 7, config=config)
        assert np.array_equal(product, multiply_dense(a, b))

    def test_repair_runs_with_failures_present(self):
        """At least one seed must actually exercise the repair path."""
        from repro.core.collection import BatmapCollection

        config = self._overfull_config()
        for seed in range(40):
            a = SparseBooleanMatrix.random(10, 40, 0.4, rng=seed)
            b = SparseBooleanMatrix.random(40, 8, 0.4, rng=seed + 1)
            sets = list(a.rows) + b.column_sets()
            coll = BatmapCollection.build(sets, 40, config=config, rng=seed % 7)
            if coll.failed_insertions():
                assert np.array_equal(
                    multiply_batmap(a, b, rng=seed % 7, config=config),
                    multiply_dense(a, b))
                return
        pytest.fail("no seed produced failed insertions; tighten the config")

    def test_empty_side_pairs_short_circuit(self):
        """Failures touching elements absent from one side add nothing —
        mirroring multiply_merge's empty-set skip."""
        from repro.matrix.multiply import _repair_cross_product

        class FakeCollection:
            def failed_insertions(self):
                # element 39 failed somewhere, but no b-column contains it
                return {39: [0]}

        a = SparseBooleanMatrix(2, 40, [np.array([39]), np.array([], dtype=np.int64)])
        b = SparseBooleanMatrix(40, 2, [np.array([], dtype=np.int64)] * 40)
        product = np.zeros((2, 2), dtype=np.int64)
        repaired = _repair_cross_product(product, FakeCollection(), a, b)
        assert repaired is product  # untouched, not even copied
        assert np.array_equal(repaired, np.zeros((2, 2), dtype=np.int64))

    def test_membership_matrix_one_pass(self):
        from repro.matrix.multiply import _membership_matrix

        sets = [np.array([1, 5, 9]), np.array([], dtype=np.int64), np.array([5])]
        elements = np.array([5, 9])
        out = _membership_matrix(sets, elements)
        assert out.tolist() == [[True, True], [False, False], [True, False]]


class TestJoinProject:
    def test_small_example(self):
        # R(a, k): a joins to k; S(k, c)
        r = Relation.from_tuples([(0, 1), (0, 2), (1, 2)], left_domain=2, right_domain=3)
        s = Relation.from_tuples([(1, 0), (2, 0), (2, 1)], left_domain=3, right_domain=2)
        counting = join_project_counting(r, s, use_batmaps=False)
        # a=0 joins via k=1,2 to c=0 (two witnesses) and via k=2 to c=1
        assert counting[0, 0] == 2
        assert counting[0, 1] == 1
        assert counting[1, 0] == 1
        assert join_project(r, s, use_batmaps=False) == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_batmap_and_dense_agree(self):
        rng = np.random.default_rng(3)
        pairs_r = [(int(a), int(k))
                   for a, k in zip(rng.integers(0, 10, 60), rng.integers(0, 25, 60))]
        pairs_s = [(int(k), int(c))
                   for k, c in zip(rng.integers(0, 25, 60), rng.integers(0, 8, 60))]
        r = Relation.from_tuples(pairs_r, 10, 25)
        s = Relation.from_tuples(pairs_s, 25, 8)
        assert np.array_equal(join_project_counting(r, s, use_batmaps=True, rng=0),
                              join_project_counting(r, s, use_batmaps=False))
        assert join_project(r, s, use_batmaps=True, rng=0) == join_project(r, s, use_batmaps=False)

    def test_relation_validation(self):
        with pytest.raises(ValueError):
            Relation.from_tuples([(0, 5)], left_domain=2, right_domain=3)
        with pytest.raises(ValueError):
            Relation.from_tuples([(2, 0)], left_domain=2, right_domain=3)
        with pytest.raises(ValueError):
            Relation(np.zeros((2, 3)), 2, 2)

    def test_cardinality_dedupes(self):
        r = Relation.from_tuples([(0, 1), (0, 1), (1, 2)], 2, 3)
        assert r.cardinality == 2

    def test_join_domain_mismatch(self):
        r = Relation.from_tuples([(0, 1)], 1, 2)
        s = Relation.from_tuples([(0, 0)], 5, 1)
        with pytest.raises(ValueError):
            join_project_counting(r, s)

    def test_to_matrix(self):
        r = Relation.from_tuples([(0, 1), (1, 0)], 2, 2)
        assert np.array_equal(r.to_matrix().to_dense(),
                              np.array([[False, True], [True, False]]))
