"""Out-of-core sharded collections: spill format, identity, planning, budgets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch import BatchPairCounter
from repro.core.collection import BatmapCollection
from repro.core.config import BatmapConfig
from repro.core.errors import LayoutError, SpillFormatError
from repro.core.plan import BuildPlan, CountPlan, plan_build, plan_counts
from repro.core.sharded import (
    ShardedCollection,
    ShardedCollectionBuilder,
    fixed_resident_bytes,
    plan_shard_ranges,
    set_packed_bytes,
    working_budget,
)
from repro.core.hashing import HashFamily
from repro.parallel.sharded import ShardedPairCounter, block_words_for_budget
from repro.utils.memory import parse_memory_size
from tests.conftest import random_sets

UNIVERSE = 2048


def make_sets(n=36, universe=UNIVERSE, seed=5, max_size=300):
    rng = np.random.default_rng(seed)
    return random_sets(rng, n, universe, min_size=1, max_size=max_size)


def budget_for(n_sets, universe=UNIVERSE, extra=200_000):
    """A budget that leaves ``extra`` bytes of working room above the floor."""
    return fixed_resident_bytes(universe, n_sets) + extra


class TestShardPlanning:
    def test_ranges_cover_and_respect_budget(self):
        from repro.core.sharded import SHARD_BUDGET_DIVISOR

        packed = np.full(20, 1000, dtype=np.int64)
        ranges = plan_shard_ranges(packed, SHARD_BUDGET_DIVISOR * 3000)
        assert ranges[0] == (0, 3)
        assert ranges[-1][1] == 20
        for (_, hi), (next_lo, _) in zip(ranges, ranges[1:]):
            assert hi == next_lo
        for lo, hi in ranges:
            assert packed[lo:hi].sum() <= 3000

    def test_oversized_set_gets_singleton_shard(self):
        packed = np.array([10, 999_999, 10], dtype=np.int64)
        ranges = plan_shard_ranges(packed, 8 * 100)
        assert (1, 2) in ranges

    def test_max_sets_per_shard(self):
        packed = np.ones(10, dtype=np.int64)
        ranges = plan_shard_ranges(packed, 1 << 30, max_sets_per_shard=4)
        assert ranges == [(0, 4), (4, 8), (8, 10)]

    def test_set_packed_bytes_matches_device_layout(self):
        from repro.core.bulk_build import device_word_layout

        sets = make_sets(8)
        collection = BatmapCollection.build(sets, UNIVERSE, rng=0)
        _, _, total = device_word_layout(
            [bm.r for bm in collection.batmaps_sorted])
        sizes = [np.unique(np.asarray(s)).size for s in sets]
        assert int(set_packed_bytes(sizes, UNIVERSE, collection.config).sum()) == total * 4

    def test_working_budget_subtracts_fixed_residents(self):
        fixed = fixed_resident_bytes(1000, 10)
        assert working_budget(fixed + 100_000, 1000, 10) == 100_000
        with pytest.raises(ValueError, match="irreducibly resident"):
            working_budget(fixed + 1, 1000, 10)


class TestSpillIdentity:
    def test_sharded_counts_bit_identical_to_monolithic(self, tmp_path):
        sets = make_sets(36)
        reference = BatmapCollection.build(sets, UNIVERSE, rng=7).count_all_pairs()
        sharded = ShardedCollection.build(
            sets, UNIVERSE, tmp_path / "spill", rng=7,
            memory_budget=budget_for(36), max_sets_per_shard=7,
        )
        assert sharded.n_shards >= 5
        np.testing.assert_array_equal(sharded.count_all_pairs(), reference)

    def test_reattach_from_spill(self, tmp_path):
        sets = make_sets(12, seed=9)
        reference = BatmapCollection.build(sets, UNIVERSE, rng=3).count_all_pairs()
        built = ShardedCollection.build(sets, UNIVERSE, tmp_path / "sp", rng=3,
                                        memory_budget=budget_for(12),
                                        max_sets_per_shard=5)
        reattached = ShardedCollection.from_spill(tmp_path / "sp")
        assert reattached.n_sets == built.n_sets
        assert reattached.r0 == built.r0
        np.testing.assert_array_equal(reattached.count_all_pairs(), reference)

    def test_mixed_widths_across_shards(self, tmp_path):
        # shard 0 gets only small sets, shard 1 only large ones: the
        # cross-shard rectangle must fold wide rows onto narrow ones
        rng = np.random.default_rng(3)
        small = [np.sort(rng.choice(UNIVERSE, size=12, replace=False))
                 for _ in range(4)]
        large = [np.sort(rng.choice(UNIVERSE, size=700, replace=False))
                 for _ in range(4)]
        sets = small + large
        reference = BatmapCollection.build(sets, UNIVERSE, rng=1).count_all_pairs()
        sharded = ShardedCollection.build(sets, UNIVERSE, tmp_path / "mix", rng=1,
                                          memory_budget=budget_for(8),
                                          max_sets_per_shard=4)
        assert sharded.n_shards >= 2
        np.testing.assert_array_equal(sharded.count_all_pairs(), reference)

    def test_parallel_counter_bit_identical(self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.parallel.executor.PARALLEL_MIN_SETS", 4)
        sets = make_sets(24, seed=11)
        reference = BatmapCollection.build(sets, UNIVERSE, rng=2).count_all_pairs()
        sharded = ShardedCollection.build(sets, UNIVERSE, tmp_path / "par", rng=2,
                                          memory_budget=budget_for(24),
                                          max_sets_per_shard=6)
        counter = ShardedPairCounter(sharded, compute="parallel", workers=2,
                                     tile_size=5)
        assert counter.plan.backend == "parallel"
        np.testing.assert_array_equal(counter.counts(), reference)

    def test_failed_insertions_use_global_indices(self, tmp_path):
        config = BatmapConfig(range_multiplier=1.0, seed=3)
        rng = np.random.default_rng(8)
        sets = [np.sort(rng.choice(256, size=100, replace=False))
                for _ in range(10)]
        reference = BatmapCollection.build(sets, 256, config=config, rng=5)
        sharded = ShardedCollection.build(sets, 256, tmp_path / "fail",
                                          config=config, rng=5,
                                          memory_budget=budget_for(10, 256),
                                          max_sets_per_shard=3)
        assert sharded.failed_insertions() == reference.failed_insertions()

    def test_cross_index_matches_cross_slots(self):
        sets = make_sets(14, seed=21)
        collection = BatmapCollection.build(sets, UNIVERSE, rng=4)
        index = BatchPairCounter(collection).index
        rows = np.array([0, 3, 9])
        cols = np.array([1, 2, 13, 5])
        np.testing.assert_array_equal(
            index.cross_index(index, rows, cols),
            index.cross_slots(rows, cols),
        )
        # full rectangle default
        np.testing.assert_array_equal(
            index.cross_index(index),
            index.cross_slots(np.arange(index.n_slots), np.arange(index.n_slots)),
        )


class TestSpillFormat:
    def test_from_spill_requires_manifest(self, tmp_path):
        with pytest.raises(SpillFormatError, match="manifest"):
            ShardedCollection.from_spill(tmp_path)

    def test_incomplete_shard_directory(self, tmp_path):
        sets = make_sets(6, seed=2)
        built = ShardedCollection.build(sets, UNIVERSE, tmp_path, rng=0,
                                        memory_budget=budget_for(6),
                                        max_sets_per_shard=3)
        (built.shards[0].directory / "words.npy").unlink()
        reattached = ShardedCollection.from_spill(tmp_path)
        with pytest.raises(SpillFormatError, match="incomplete"):
            reattached.attach(0)

    def test_cleanup_removes_spill(self, tmp_path):
        built = ShardedCollection.build(make_sets(4, seed=1), UNIVERSE,
                                        tmp_path / "gone", rng=0,
                                        memory_budget=budget_for(4))
        built.cleanup()
        assert not (tmp_path / "gone").exists()

    def test_wide_payload_layout_rejected(self, tmp_path):
        config = BatmapConfig(payload_bits=9)
        family = HashFamily.create(64, shift=0, rng=0)
        with pytest.raises(LayoutError, match="byte-packed"):
            ShardedCollectionBuilder(tmp_path, 64, 4, family=family,
                                     config=config)

    def test_builder_rejects_empty_usage(self, tmp_path):
        family = HashFamily.create(64, shift=0, rng=0)
        builder = ShardedCollectionBuilder(tmp_path, 64, 4, family=family)
        with pytest.raises(ValueError, match="no shards"):
            builder.finalize()
        with pytest.raises(ValueError, match="empty shard"):
            builder.add_shard([])


class TestBudgetPlanning:
    def test_plan_counts_demotes_to_sharded_over_budget(self):
        from repro.core.plan import PlanFeatures

        features = PlanFeatures(n_sets=1000, total_words=1 << 22, r0=16,
                                byte_entries=True)
        plan = plan_counts(features, memory_budget=1 << 20, workers=4)
        assert plan.backend == "sharded"
        assert "budget" in plan.reason
        # without a budget nothing changes
        assert plan_counts(features, workers=4).backend in ("batch", "parallel")
        # fits under budget -> normal policy
        assert plan_counts(features, memory_budget=1 << 30,
                           workers=1).backend == "batch"

    def test_plan_counts_sharded_explicit_request(self):
        from repro.core.plan import PlanFeatures

        features = PlanFeatures(n_sets=10, total_words=100, r0=16,
                                byte_entries=True)
        assert plan_counts(features, requested="sharded").backend == "sharded"

    def test_plan_counts_layout_gate_beats_budget(self):
        from repro.core.plan import PlanFeatures

        features = PlanFeatures(n_sets=1000, total_words=1 << 22, r0=2,
                                byte_entries=True)
        assert plan_counts(features, memory_budget=1).backend == "host"

    def test_plan_build_demotes_to_sharded_over_budget(self):
        plan = plan_build(1000, 1 << 22, memory_budget=1 << 20,
                          packed_bytes=1 << 24)
        assert plan.backend == "sharded"
        fits = plan_build(1000, 1 << 22, memory_budget=1 << 30,
                          packed_bytes=1 << 24)
        assert fits.backend in ("host", "bulk", "parallel")
        assert plan_build(4, 100, requested="sharded").backend == "sharded"

    def test_plan_dataclasses_accept_sharded(self):
        CountPlan("sharded", 1, "r")
        BuildPlan("sharded", 1, "r")

    def test_block_words_budget(self):
        from repro.core.batch import DEFAULT_BLOCK_WORDS

        assert block_words_for_budget(None) == DEFAULT_BLOCK_WORDS
        assert block_words_for_budget(1 << 30) == DEFAULT_BLOCK_WORDS
        assert block_words_for_budget(1) == 1 << 12
        assert block_words_for_budget(1 << 20) == (1 << 20) // 128


class TestParseMemorySize:
    @pytest.mark.parametrize("text,expected", [
        ("64M", 64 << 20),
        ("64MiB", 64 << 20),
        ("1.5K", 1536),
        ("2g", 2 << 30),
        ("4096", 4096),
        (4096, 4096),
        ("10 kb", 10 << 10),
    ])
    def test_valid(self, text, expected):
        assert parse_memory_size(text) == expected

    @pytest.mark.parametrize("text", ["", "M", "64Q", "-5M", "0", -1, "1.2.3M"])
    def test_invalid(self, text):
        with pytest.raises(ValueError):
            parse_memory_size(text)
