"""Tests for the frequent itemset miners: Apriori, FP-growth, Eclat.

All three must agree with a brute-force reference on small databases, for
all itemset sizes, and their pair-mining fast paths must agree with each
other (they feed the Figure 6/7 benchmark series).
"""

from itertools import combinations

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.apriori import AprioriMiner
from repro.baselines.counting import (
    PairCounter,
    count_pairs_horizontal,
    triangle_index,
    triangle_size,
)
from repro.baselines.eclat import EclatMiner
from repro.baselines.fpgrowth import FPGrowthMiner, FPTree
from repro.datasets.synthetic import generate_fixed_transactions


def brute_force_itemsets(transactions, min_support, max_size=None):
    """Reference: enumerate every itemset occurring in the data and count it."""
    counts: dict[tuple[int, ...], int] = {}
    for t in transactions:
        items = sorted(set(int(x) for x in t))
        top = len(items) if max_size is None else min(len(items), max_size)
        for k in range(1, top + 1):
            for combo in combinations(items, k):
                counts[combo] = counts.get(combo, 0) + 1
    return {k: v for k, v in counts.items() if v >= min_support}


SMALL_DB = [
    [0, 1, 2],
    [0, 1],
    [0, 2, 3],
    [1, 2],
    [0, 1, 2, 3],
    [3],
]


class TestTriangleCounting:
    def test_triangle_size(self):
        assert triangle_size(0) == 0
        assert triangle_size(1) == 0
        assert triangle_size(4) == 6

    def test_triangle_index_enumerates_all_pairs(self):
        n = 6
        seen = {triangle_index(i, j, n) for i in range(n) for j in range(i + 1, n)}
        assert seen == set(range(triangle_size(n)))

    def test_triangle_index_validates(self):
        with pytest.raises(ValueError):
            triangle_index(2, 2, 5)
        with pytest.raises(ValueError):
            triangle_index(3, 1, 5)

    def test_pair_counter_counts(self):
        counter = PairCounter(4)
        for t in SMALL_DB:
            counter.add_transaction(t)
        assert counter.get(0, 1) == 3
        assert counter.get(1, 0) == 3  # symmetric access
        assert counter.get(0, 3) == 2
        assert counter.get(1, 3) == 1

    def test_pair_counter_rejects_diagonal_and_bad_ids(self):
        counter = PairCounter(4)
        with pytest.raises(ValueError):
            counter.get(1, 1)
        with pytest.raises(ValueError):
            counter.add_transaction([0, 4])

    def test_frequent_pairs_threshold(self):
        pairs = count_pairs_horizontal(SMALL_DB, 4, min_support=3)
        assert (0, 1, 3) in pairs and (0, 2, 3) in pairs
        assert all(s >= 3 for _, _, s in pairs)

    def test_unflatten_roundtrip(self):
        counter = PairCounter(9)
        for i in range(9):
            for j in range(i + 1, 9):
                assert counter._unflatten(triangle_index(i, j, 9)) == (i, j)


class TestAprioriSmall:
    def test_matches_brute_force_all_sizes(self):
        result = AprioriMiner().mine(SMALL_DB, 4, min_support=2)
        assert result.itemsets == brute_force_itemsets(SMALL_DB, 2)

    def test_max_size_two(self):
        result = AprioriMiner(max_size=2).mine(SMALL_DB, 4, min_support=2)
        expected = {k: v for k, v in brute_force_itemsets(SMALL_DB, 2, max_size=2).items()}
        assert result.itemsets == expected

    def test_pairs_helper(self):
        pairs = AprioriMiner().mine_pairs(SMALL_DB, 4, min_support=2)
        assert all(len(k) == 2 for k in pairs)
        assert pairs[(0, 1)] == 3

    def test_support_accessor(self):
        result = AprioriMiner().mine(SMALL_DB, 4, min_support=2)
        assert result.support([1, 0]) == 3
        assert result.support([3, 1]) == 0  # infrequent

    def test_peak_memory_counts_triangle(self):
        result = AprioriMiner(max_size=2).mine(SMALL_DB, 4, min_support=1)
        assert result.peak_memory_bytes >= 8 * triangle_size(4)

    def test_memory_model_quadratic(self):
        assert AprioriMiner.estimate_pair_memory_bytes(64_000) > 6 * 2**30  # > 6 GB, as in Fig. 5

    def test_high_min_support_prunes_everything(self):
        result = AprioriMiner().mine(SMALL_DB, 4, min_support=10)
        assert result.itemsets == {}

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            AprioriMiner().mine(SMALL_DB, 0, 1)
        with pytest.raises(ValueError):
            AprioriMiner().mine(SMALL_DB, 4, 0)
        with pytest.raises(ValueError):
            AprioriMiner(max_size=0)
        with pytest.raises(ValueError):
            AprioriMiner().mine([[9]], 4, 1)


class TestFPGrowthSmall:
    def test_matches_brute_force_all_sizes(self):
        result = FPGrowthMiner().mine(SMALL_DB, 4, min_support=2)
        assert result == brute_force_itemsets(SMALL_DB, 2)

    def test_min_support_one(self):
        result = FPGrowthMiner().mine(SMALL_DB, 4, min_support=1)
        assert result == brute_force_itemsets(SMALL_DB, 1)

    def test_pairs_only(self):
        pairs = FPGrowthMiner().mine_pairs(SMALL_DB, 4, min_support=2)
        expected = {k: v for k, v in brute_force_itemsets(SMALL_DB, 2, max_size=2).items()
                    if len(k) == 2}
        assert pairs == expected

    def test_tree_structure(self):
        tree, supports = FPTree.from_transactions(SMALL_DB, min_support=2)
        assert supports == {0: 4, 1: 4, 2: 4, 3: 3}
        assert tree.node_count > 0
        assert not tree.is_empty()
        assert tree.memory_bytes == 90 * tree.node_count

    def test_single_path_detection(self):
        tree, _ = FPTree.from_transactions([[0, 1, 2], [0, 1, 2], [0, 1]], min_support=1)
        chain = tree.single_path()
        assert chain is not None
        assert [item for item, _ in chain] != []

    def test_prefix_paths(self):
        tree, _ = FPTree.from_transactions(SMALL_DB, min_support=1)
        paths = tree.prefix_paths(3)
        assert all(count >= 1 for _, count in paths)

    def test_rejects_out_of_range_items(self):
        with pytest.raises(ValueError):
            FPGrowthMiner().mine([[10]], 4, 1)

    def test_empty_database(self):
        assert FPGrowthMiner().mine([], 4, 1) == {}


class TestEclatSmall:
    def test_matches_brute_force_all_sizes(self):
        result = EclatMiner().mine(SMALL_DB, 4, min_support=2)
        assert result == brute_force_itemsets(SMALL_DB, 2)

    def test_pairs_only(self):
        pairs = EclatMiner().mine_pairs(SMALL_DB, 4, min_support=2)
        expected = {k: v for k, v in brute_force_itemsets(SMALL_DB, 2, max_size=2).items()
                    if len(k) == 2}
        assert pairs == expected

    def test_intersections_counted(self):
        miner = EclatMiner(max_size=2)
        miner.mine(SMALL_DB, 4, min_support=1)
        assert miner.intersections_performed > 0

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            EclatMiner().mine([[5]], 4, 1)
        with pytest.raises(ValueError):
            EclatMiner(max_size=0)


class TestMinersAgree:
    @pytest.mark.parametrize("min_support", [1, 2, 3, 5])
    def test_on_random_database(self, min_support):
        db = generate_fixed_transactions(12, 0.3, 40, rng=min_support)
        expected = brute_force_itemsets(db.transactions, min_support)
        assert AprioriMiner().mine(db.transactions, 12, min_support).itemsets == expected
        assert FPGrowthMiner().mine(db.transactions, 12, min_support) == expected
        assert EclatMiner().mine(db.transactions, 12, min_support) == expected

    @given(st.integers(0, 2**31), st.integers(1, 4))
    @settings(max_examples=15, deadline=None)
    def test_property_pair_mining_agreement(self, seed, min_support):
        db = generate_fixed_transactions(10, 0.35, 30, rng=seed)
        apriori = AprioriMiner().mine_pairs(db.transactions, 10, min_support)
        fp = FPGrowthMiner().mine_pairs(db.transactions, 10, min_support)
        eclat = EclatMiner().mine_pairs(db.transactions, 10, min_support)
        assert apriori == fp == eclat
