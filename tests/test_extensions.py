"""Tests for the Section V extensions: d-of-(d+1) batmaps and multi-way intersection."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.collection import BatmapCollection
from repro.extensions.dofd1 import (
    GeneralizedBatmap,
    GeneralizedBatmapFamily,
    multiway_intersection_size,
)
from repro.extensions.multiway import multiway_intersection


def exact_multi_intersection(sets) -> set[int]:
    out = set(sets[0].tolist())
    for s in sets[1:]:
        out &= set(s.tolist())
    return out


class TestGeneralizedBatmap:
    def test_family_validation(self):
        with pytest.raises(ValueError):
            GeneralizedBatmapFamily.create(0, 2)
        with pytest.raises(ValueError):
            GeneralizedBatmapFamily.create(100, 1)

    def test_build_stores_d_copies(self):
        family = GeneralizedBatmapFamily.create(500, d=3, rng=0)
        elements = np.arange(0, 500, 7)
        bm = GeneralizedBatmap.build(elements, family)
        bm.validate()
        assert np.array_equal(bm.stored_elements, elements)
        assert all(c == 3 for c in bm.copies_per_element().values())

    def test_d2_matches_core_structure(self):
        """d = 2 is the paper's 2-of-3 scheme (in uncompressed form)."""
        family = GeneralizedBatmapFamily.create(300, d=2, rng=1)
        bm = GeneralizedBatmap.build(np.arange(100), family)
        bm.validate()
        assert all(c == 2 for c in bm.copies_per_element().values())

    def test_out_of_range_rejected(self):
        family = GeneralizedBatmapFamily.create(10, d=2, rng=0)
        with pytest.raises(ValueError):
            GeneralizedBatmap.build([10], family)

    def test_overfull_records_failures(self):
        family = GeneralizedBatmapFamily.create(1000, d=2, rng=0)
        bm = GeneralizedBatmap.build(np.arange(200), family, r=64, max_loop=5)
        assert bm.failed
        bm.validate()

    def test_three_way_intersection_exact(self):
        rng = np.random.default_rng(3)
        m = 800
        family = GeneralizedBatmapFamily.create(m, d=3, rng=0)
        sets = [np.sort(rng.choice(m, 250, replace=False)) for _ in range(3)]
        batmaps = [GeneralizedBatmap.build(s, family) for s in sets]
        assert all(not bm.failed for bm in batmaps)
        assert multiway_intersection_size(batmaps) == len(exact_multi_intersection(sets))

    def test_pairwise_with_unequal_sizes(self):
        rng = np.random.default_rng(4)
        m = 600
        family = GeneralizedBatmapFamily.create(m, d=2, rng=1)
        small = np.sort(rng.choice(m, 20, replace=False))
        large = np.sort(rng.choice(m, 300, replace=False))
        bms = [GeneralizedBatmap.build(small, family), GeneralizedBatmap.build(large, family)]
        assert multiway_intersection_size(bms) == len(exact_multi_intersection([small, large]))

    def test_too_many_sets_rejected(self):
        family = GeneralizedBatmapFamily.create(100, d=2, rng=0)
        bms = [GeneralizedBatmap.build(np.arange(10), family) for _ in range(3)]
        with pytest.raises(ValueError):
            multiway_intersection_size(bms)

    def test_mixed_families_rejected(self):
        f1 = GeneralizedBatmapFamily.create(100, d=2, rng=0)
        f2 = GeneralizedBatmapFamily.create(100, d=2, rng=1)
        with pytest.raises(ValueError):
            multiway_intersection_size([
                GeneralizedBatmap.build([1], f1), GeneralizedBatmap.build([1], f2)])

    @given(st.integers(0, 2**31), st.integers(2, 4))
    @settings(max_examples=10, deadline=None)
    def test_property_k_way_counts_exact(self, seed, k):
        rng = np.random.default_rng(seed)
        m = 400
        family = GeneralizedBatmapFamily.create(m, d=k, rng=seed % 7)
        sets = [np.sort(rng.choice(m, int(rng.integers(50, 200)), replace=False))
                for _ in range(k)]
        batmaps = [GeneralizedBatmap.build(s, family) for s in sets]
        if any(bm.failed for bm in batmaps):
            return  # rare; exactness claim only covers stored elements
        assert multiway_intersection_size(batmaps) == len(exact_multi_intersection(sets))


class TestMultiwayWithStandardBatmaps:
    def test_three_way_exact(self):
        rng = np.random.default_rng(5)
        m = 700
        sets = [np.sort(rng.choice(m, 200, replace=False)) for _ in range(3)]
        coll = BatmapCollection.build(sets, m, rng=2)
        result = multiway_intersection(coll, [0, 1, 2])
        if not result.failed_involved:
            assert result.size == len(exact_multi_intersection(sets))
        assert result.elements.size == result.size

    def test_pivot_is_smallest_set(self):
        m = 300
        sets = [np.arange(0, 300, 2), np.arange(0, 30), np.arange(0, 300, 3)]
        coll = BatmapCollection.build(sets, m, rng=0)
        result = multiway_intersection(coll, [0, 1, 2])
        expected = exact_multi_intersection([np.asarray(s) for s in sets])
        assert set(result.elements.tolist()) == expected

    def test_validation(self):
        coll = BatmapCollection.build([[1, 2], [2, 3]], 16, rng=0)
        with pytest.raises(ValueError):
            multiway_intersection(coll, [0])
        with pytest.raises(ValueError):
            multiway_intersection(coll, [0, 0])

    @given(st.integers(0, 2**31), st.integers(2, 5))
    @settings(max_examples=10, deadline=None)
    def test_property_matches_exact(self, seed, k):
        rng = np.random.default_rng(seed)
        m = 500
        sets = [np.sort(rng.choice(m, int(rng.integers(10, 150)), replace=False))
                for _ in range(k)]
        coll = BatmapCollection.build(sets, m, rng=seed % 5)
        result = multiway_intersection(coll, list(range(k)))
        if result.failed_involved:
            return
        assert set(result.elements.tolist()) == exact_multi_intersection(sets)

    @given(st.integers(0, 2**31), st.integers(2, 5))
    @settings(max_examples=15, deadline=None)
    def test_property_elements_unique_and_sorted(self, seed, k):
        """Each intersecting element appears exactly once — never once per
        stored copy — even on overfull instances with failed insertions."""
        rng = np.random.default_rng(seed)
        m = 300
        sets = [np.sort(rng.choice(m, int(rng.integers(20, 200)), replace=False))
                for _ in range(k)]
        # range_multiplier 1.0 provokes failed insertions on some draws
        from repro.core.config import BatmapConfig

        coll = BatmapCollection.build(
            sets, m, config=BatmapConfig(range_multiplier=1.0, max_loop=8),
            rng=seed % 5)
        result = multiway_intersection(coll, list(range(k)))
        assert np.array_equal(result.elements, np.unique(result.elements))

    def test_batched_probe_matches_per_set_reference(self):
        """The one-gather-per-hash-function path equals the seed's per-set probe."""
        rng = np.random.default_rng(17)
        m = 600
        sets = [np.sort(rng.choice(m, size, replace=False))
                for size in (40, 220, 350, 180)]
        coll = BatmapCollection.build(sets, m, rng=3)
        family = coll.family
        pivot = min(range(4), key=lambda i: coll.batmap(i).set_size)
        pivot_elements = coll.batmap(pivot).decode_elements()
        keep = np.ones(pivot_elements.size, dtype=bool)
        for j in (i for i in range(4) if i != pivot):
            bm = coll.batmap(j)
            member = np.zeros(pivot_elements.size, dtype=bool)
            for t in range(3):
                pos = family.positions(t, pivot_elements, bm.r)
                payloads = family.payloads(t, pivot_elements)
                entries = bm.entries[t, pos]
                member |= (entries.astype(np.int64)
                           & coll.config.payload_mask) == payloads
            keep &= member
        expected = np.unique(pivot_elements[keep])
        result = multiway_intersection(coll, [0, 1, 2, 3])
        assert np.array_equal(result.elements, expected)

    def test_empty_intersection_short_circuits(self):
        m = 128
        sets = [np.arange(0, 64), np.arange(64, 128), np.arange(0, 128, 2)]
        coll = BatmapCollection.build(sets, m, rng=1)
        result = multiway_intersection(coll, [0, 1, 2])
        assert result.size == 0
        assert result.elements.size == 0
