"""Tests for the batmap mining pipeline: preprocessing, repair, end-to-end agreement."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.apriori import AprioriMiner
from repro.baselines.fpgrowth import FPGrowthMiner
from repro.core.config import BatmapConfig
from repro.datasets.synthetic import generate_fixed_transactions
from repro.datasets.transactions import TransactionDatabase
from repro.kernels.driver import run_batmap_pair_counts
from repro.mining.itemsets import BatmapItemsetMiner
from repro.mining.pair_mining import BatmapPairMiner
from repro.mining.postprocess import reorder_counts, repair_pair_counts, upper_triangle_pairs
from repro.mining.preprocess import preprocess
from repro.mining.support import PairSupports


def brute_force_pair_matrix(db: TransactionDatabase) -> np.ndarray:
    """Exact pair-support matrix (diagonal = item supports)."""
    n = db.n_items
    out = np.zeros((n, n), dtype=np.int64)
    for t in db.transactions:
        items = t.tolist()
        for a in items:
            out[a, a] += 1
        for ai in range(len(items)):
            for bi in range(ai + 1, len(items)):
                a, b = items[ai], items[bi]
                out[a, b] += 1
                out[b, a] += 1
    return out


class TestPreprocess:
    def test_basic_structure(self):
        db = generate_fixed_transactions(20, 0.2, 100, rng=0)
        pre = preprocess(db, rng=0)
        assert pre.n_items == 20
        assert pre.universe_size == db.n_transactions
        assert pre.batmap_bytes > 0
        assert pre.item_map.tolist() == list(range(20))

    def test_min_support_filtering(self):
        db = TransactionDatabase([[0, 1], [1, 2], [1]], n_items=3)
        pre = preprocess(db, min_support=2, rng=0)
        assert pre.n_items == 1          # only item 1 survives
        assert pre.item_map.tolist() == [1]

    def test_no_filtering_option(self):
        db = TransactionDatabase([[0, 1], [1, 2], [1]], n_items=3)
        pre = preprocess(db, min_support=2, filter_items=False, rng=0)
        assert pre.n_items == 3

    def test_rejects_empty_database_after_filter(self):
        db = TransactionDatabase([[0]], n_items=1)
        with pytest.raises(ValueError):
            preprocess(db, min_support=0)

    def test_tidlists_become_batmaps(self):
        db = TransactionDatabase([[0, 1], [0], [0, 1]], n_items=2)
        pre = preprocess(db, rng=0)
        assert pre.collection.batmap(0).set_size == 3   # item 0 in 3 transactions
        assert pre.collection.batmap(1).set_size == 2


class TestPostprocess:
    def test_reorder_counts_roundtrip(self):
        db = generate_fixed_transactions(10, 0.3, 50, rng=1)
        pre = preprocess(db, rng=1)
        result = run_batmap_pair_counts(pre.collection, tile_size=4)
        reordered = reorder_counts(result.counts, pre.collection)
        assert np.array_equal(reordered, pre.collection.count_all_pairs())

    def test_reorder_shape_checked(self):
        db = generate_fixed_transactions(5, 0.3, 20, rng=0)
        pre = preprocess(db, rng=0)
        with pytest.raises(ValueError):
            reorder_counts(np.zeros((3, 3), dtype=np.int64), pre.collection)

    def test_repair_restores_exact_counts(self):
        """With under-provisioned tables many insertions fail; repair must restore exactness."""
        db = generate_fixed_transactions(12, 0.5, 120, rng=2)
        config = BatmapConfig(max_loop=2, range_multiplier=1.0)
        pre = preprocess(db, config=config, rng=3)
        failures = pre.failed_insertions()
        assert failures, "expected forced insertion failures with max_loop=2"
        counts = reorder_counts(run_batmap_pair_counts(pre.collection, tile_size=6).counts,
                                pre.collection)
        repaired = repair_pair_counts(counts, pre.collection, pre.database)
        assert np.array_equal(repaired, brute_force_pair_matrix(db))

    def test_repair_without_failures_is_identity(self):
        db = generate_fixed_transactions(8, 0.3, 40, rng=4)
        pre = preprocess(db, rng=4)
        counts = reorder_counts(run_batmap_pair_counts(pre.collection, tile_size=4).counts,
                                pre.collection)
        repaired = repair_pair_counts(counts, pre.collection, pre.database)
        assert np.array_equal(repaired, counts)

    def test_repair_shape_checked(self):
        db = generate_fixed_transactions(5, 0.3, 20, rng=0)
        pre = preprocess(db, rng=0)
        with pytest.raises(ValueError):
            repair_pair_counts(np.zeros((2, 2), dtype=np.int64), pre.collection, pre.database)

    def test_upper_triangle_pairs(self):
        counts = np.array([[5, 2, 0], [2, 4, 3], [0, 3, 6]], dtype=np.int64)
        pairs = upper_triangle_pairs(counts, min_support=2)
        assert pairs == {(0, 1): 2, (1, 2): 3}
        with pytest.raises(ValueError):
            upper_triangle_pairs(np.zeros((2, 3)), 1)


class TestPairSupports:
    def _supports(self):
        counts = np.array([[4, 2], [2, 3]], dtype=np.int64)
        return PairSupports(counts=counts, item_ids=np.array([7, 9]))

    def test_support_lookup_by_original_id(self):
        s = self._supports()
        assert s.support(7, 9) == 2
        assert s.support(7, 7) == 4
        with pytest.raises(KeyError):
            s.support(1, 9)

    def test_frequent_pairs_and_topk(self):
        s = self._supports()
        assert s.frequent_pairs(1) == {(7, 9): 2}
        assert s.frequent_pairs(3) == {}
        assert s.top_k(1) == [((7, 9), 2)]
        assert s.total_pairs_with_support(2) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            PairSupports(counts=np.zeros((2, 3)), item_ids=np.array([1, 2]))
        with pytest.raises(ValueError):
            PairSupports(counts=np.zeros((2, 2)), item_ids=np.array([1]))


class TestEndToEnd:
    @pytest.mark.parametrize("min_support", [1, 2, 4])
    def test_matches_fpgrowth(self, min_support):
        db = generate_fixed_transactions(25, 0.25, 150, rng=5)
        miner = BatmapPairMiner(tile_size=8)
        got = miner.mine_pairs(db, 25, min_support, rng=0)
        expected = FPGrowthMiner().mine_pairs(db.transactions, 25, min_support)
        assert got == expected

    def test_report_fields(self):
        db = generate_fixed_transactions(15, 0.3, 80, rng=6)
        report = BatmapPairMiner(tile_size=8).mine(db, min_support=2, rng=0)
        assert report.preprocess_seconds > 0
        assert report.counting_seconds > 0
        assert report.total_seconds >= report.counting_seconds
        assert report.device_bytes > 0
        assert report.batmap_bytes > 0
        assert report.tiles >= 1
        assert 0 < report.coalescing_efficiency <= 1.0

    def test_exact_even_with_forced_failures(self):
        db = generate_fixed_transactions(10, 0.5, 100, rng=7)
        miner = BatmapPairMiner(
            tile_size=8, config=BatmapConfig(max_loop=2, range_multiplier=1.0))
        report = miner.mine(db, min_support=1, rng=1)
        assert report.failed_insertions > 0
        expected = brute_force_pair_matrix(db)
        assert np.array_equal(report.supports.counts, expected)

    def test_min_support_validated(self):
        db = generate_fixed_transactions(5, 0.3, 20, rng=0)
        with pytest.raises(ValueError):
            BatmapPairMiner().mine(db, min_support=0)

    @given(st.integers(0, 2**31))
    @settings(max_examples=8, deadline=None)
    def test_property_pair_supports_exact(self, seed):
        db = generate_fixed_transactions(12, 0.3, 60, rng=seed)
        report = BatmapPairMiner(tile_size=8).mine(db, min_support=1, rng=seed % 3)
        assert np.array_equal(report.supports.counts, brute_force_pair_matrix(db))


class TestItemsetMiner:
    def test_matches_apriori_to_size_three(self):
        db = generate_fixed_transactions(14, 0.35, 80, rng=8)
        result = BatmapItemsetMiner(BatmapPairMiner(tile_size=8), max_size=3).mine(
            db, min_support=4, rng=0)
        expected = AprioriMiner(max_size=3).mine(db.transactions, 14, 4).itemsets
        assert result.itemsets == expected
        assert result.max_size() <= 3

    def test_all_sizes_match_apriori(self):
        db = generate_fixed_transactions(10, 0.4, 50, rng=9)
        result = BatmapItemsetMiner(BatmapPairMiner(tile_size=8)).mine(db, min_support=6, rng=0)
        expected = AprioriMiner().mine(db.transactions, 10, 6).itemsets
        assert result.itemsets == expected

    def test_size_one_only(self):
        db = generate_fixed_transactions(8, 0.3, 40, rng=10)
        result = BatmapItemsetMiner(BatmapPairMiner(tile_size=8), max_size=1).mine(
            db, min_support=2, rng=0)
        assert all(len(k) == 1 for k in result.itemsets)

    def test_of_size_accessor(self):
        db = generate_fixed_transactions(10, 0.4, 50, rng=11)
        result = BatmapItemsetMiner(BatmapPairMiner(tile_size=8), max_size=2).mine(
            db, min_support=5, rng=0)
        pairs = result.of_size(2)
        assert all(len(k) == 2 for k in pairs)
        assert result.pair_phase_seconds > 0


class TestHostComputeMode:
    def test_host_matches_device_counts(self):
        db = generate_fixed_transactions(20, 0.3, 120, rng=8)
        device = BatmapPairMiner(tile_size=8).mine(db, min_support=1, rng=0)
        host = BatmapPairMiner(compute="host").mine(db, min_support=1, rng=0)
        assert np.array_equal(device.supports.counts, host.supports.counts)
        # the host path has no device model attached but does time counting
        assert host.device_seconds == 0.0
        assert host.tiles == 0
        assert host.counting_seconds > 0
        assert host.total_seconds >= host.counting_seconds

    def test_invalid_compute_rejected(self):
        db = generate_fixed_transactions(10, 0.3, 40, rng=8)
        with pytest.raises(ValueError):
            BatmapPairMiner(compute="cloud").mine(db, min_support=1, rng=0)


class TestParallelComputeMode:
    def test_parallel_matches_host_counts_with_fallback(self):
        """Small instance: compute="parallel" drops to the batch engine."""
        db = generate_fixed_transactions(20, 0.3, 120, rng=8)
        host = BatmapPairMiner(compute="host").mine(db, min_support=1, rng=0)
        parallel = BatmapPairMiner(compute="parallel", workers=2).mine(
            db, min_support=1, rng=0)
        assert np.array_equal(host.supports.counts, parallel.supports.counts)
        assert host.count_backend == "batch"
        assert parallel.count_backend == "batch"      # fell back: tiny input

    def test_parallel_forced_through_pool(self, monkeypatch):
        import repro.parallel.executor as executor_module

        monkeypatch.setattr(executor_module, "PARALLEL_MIN_SETS", 1)
        db = generate_fixed_transactions(20, 0.3, 120, rng=8)
        host = BatmapPairMiner(compute="host").mine(db, min_support=1, rng=0)
        parallel = BatmapPairMiner(compute="parallel", workers=2).mine(
            db, min_support=1, rng=0)
        assert np.array_equal(host.supports.counts, parallel.supports.counts)
        assert parallel.count_backend == "parallel"
        assert parallel.device_seconds == 0.0
        assert parallel.counting_seconds > 0

    def test_device_backend_recorded(self):
        db = generate_fixed_transactions(10, 0.3, 40, rng=8)
        report = BatmapPairMiner(tile_size=8).mine(db, min_support=1, rng=0)
        assert report.count_backend == "kernel"
