"""Tests for the device kernels: pair counting, bitmap baseline, tiling, drivers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.bitmap import BitmapIndex
from repro.core.collection import BatmapCollection
from repro.kernels.driver import run_batmap_pair_counts, run_bitmap_pair_counts
from repro.kernels.pair_count import PairCountKernel
from repro.kernels.tiling import Tile, TileScheduler, pad_to_multiple
from tests.conftest import random_sets


def reorder_to_original(counts_sorted: np.ndarray, coll: BatmapCollection) -> np.ndarray:
    out = np.zeros_like(counts_sorted)
    out[np.ix_(coll.order, coll.order)] = counts_sorted
    return out


class TestTiling:
    def test_pad_to_multiple(self):
        assert pad_to_multiple(0, 16) == 0
        assert pad_to_multiple(1, 16) == 16
        assert pad_to_multiple(16, 16) == 16
        assert pad_to_multiple(17, 16) == 32
        with pytest.raises(ValueError):
            pad_to_multiple(-1, 16)
        with pytest.raises(ValueError):
            pad_to_multiple(4, 0)

    def test_scheduler_counts(self):
        sched = TileScheduler(100, 30)
        assert sched.tiles_per_side == 4
        assert sched.n_tiles == 10          # upper triangle of 4x4
        assert sched.n_tiles_full == 16
        assert len(list(sched)) == len(sched)

    def test_tiles_cover_upper_triangle(self):
        sched = TileScheduler(50, 20)
        tiles = list(sched)
        assert all(t.q >= t.p for t in tiles)
        # every (row, col) cell with col >= row is inside exactly one tile
        covered = np.zeros((50, 50), dtype=int)
        for t in tiles:
            covered[t.row_start:t.row_end, t.col_start:t.col_end] += 1
        upper = np.triu(np.ones((50, 50), dtype=bool))
        assert np.all(covered[upper] >= 1)

    def test_tile_properties(self):
        t = Tile(p=1, q=1, row_start=10, row_end=20, col_start=10, col_end=20)
        assert t.rows == 10 and t.cols == 10
        assert t.is_diagonal
        assert not Tile(p=0, q=1, row_start=0, row_end=5, col_start=5, col_end=9).is_diagonal

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TileScheduler(0, 4)
        with pytest.raises(ValueError):
            TileScheduler(4, 0)


class TestPairCountKernelConstruction:
    def test_rejects_mismatched_offsets_widths(self):
        with pytest.raises(ValueError):
            PairCountKernel(np.zeros(3), np.zeros(2), 3)

    def test_rejects_non_positive_widths(self):
        with pytest.raises(ValueError):
            PairCountKernel(np.zeros(2), np.array([4, 0]), 2)

    def test_requires_tile_shape_at_run(self):
        from repro.gpu.device import GTX_285
        from repro.gpu.executor import GpuSimulator
        coll = BatmapCollection.build([[1, 2], [2, 3]], 16, rng=0)
        buf = coll.device_buffer()
        sim = GpuSimulator(GTX_285)
        sim.upload("batmaps", buf.words)
        sim.allocate("results", (4,), np.int64)
        kernel = PairCountKernel(buf.offsets, buf.widths, 2, tile_shape=None,
                                 local_size=(2, 2))
        with pytest.raises(ValueError):
            sim.launch(kernel, (2, 2))


class TestBatmapDriver:
    def test_counts_match_host_path(self, rng):
        m = 800
        sets = random_sets(rng, 24, m, max_size=150)
        coll = BatmapCollection.build(sets, m, rng=1)
        result = run_batmap_pair_counts(coll, tile_size=10)
        device = reorder_to_original(result.counts, coll)
        host = coll.count_all_pairs()
        assert np.array_equal(device, host)

    def test_single_tile_covers_everything(self, rng):
        m = 300
        sets = random_sets(rng, 9, m, max_size=60)
        coll = BatmapCollection.build(sets, m, rng=2)
        result = run_batmap_pair_counts(coll, tile_size=1000)
        assert result.tiles == 1
        assert np.array_equal(reorder_to_original(result.counts, coll),
                              coll.count_all_pairs())

    def test_matrix_symmetric(self, rng):
        sets = random_sets(rng, 17, 200, max_size=50)
        coll = BatmapCollection.build(sets, 200, rng=0)
        result = run_batmap_pair_counts(coll, tile_size=7)
        assert np.array_equal(result.counts, result.counts.T)

    def test_statistics_populated(self, rng):
        sets = random_sets(rng, 8, 200, min_size=10, max_size=50)
        coll = BatmapCollection.build(sets, 200, rng=0)
        result = run_batmap_pair_counts(coll, tile_size=8)
        assert result.device_seconds > 0
        assert result.transfer_seconds > 0
        assert result.total_device_bytes > 0
        assert 0 < result.coalescing_efficiency <= 1.0
        assert result.achieved_bandwidth_gbps > 0

    def test_symmetry_pruning_reduces_tiles(self, rng):
        sets = random_sets(rng, 32, 100, max_size=30)
        coll = BatmapCollection.build(sets, 100, rng=0)
        result = run_batmap_pair_counts(coll, tile_size=8)
        scheduler = TileScheduler(32, 8)
        assert result.tiles == scheduler.n_tiles < scheduler.n_tiles_full

    def test_rejects_bad_tile_size(self, rng):
        sets = random_sets(rng, 4, 64)
        coll = BatmapCollection.build(sets, 64, rng=0)
        with pytest.raises(ValueError):
            run_batmap_pair_counts(coll, tile_size=0)

    @given(st.integers(0, 2**31), st.integers(2, 20))
    @settings(max_examples=10, deadline=None)
    def test_property_device_equals_host(self, seed, n_sets):
        rng = np.random.default_rng(seed)
        m = 300
        sets = [np.sort(rng.choice(m, size=int(rng.integers(0, 80)), replace=False))
                for _ in range(n_sets)]
        coll = BatmapCollection.build(sets, m, rng=seed % 5)
        result = run_batmap_pair_counts(coll, tile_size=int(rng.integers(3, 40)))
        assert np.array_equal(reorder_to_original(result.counts, coll),
                              coll.count_all_pairs())


class TestBitmapDriver:
    def test_counts_match_reference(self, rng):
        m = 500
        sets = random_sets(rng, 20, m, max_size=100)
        index = BitmapIndex.from_sets(sets, m)
        result = run_bitmap_pair_counts(index, tile_size=9)
        assert np.array_equal(result.counts, index.pairwise_counts())

    def test_device_bytes_reflect_dense_layout(self, rng):
        """The bitmap kernel reads width proportional to m, not to set sizes."""
        m = 16384
        sparse_sets = [rng.choice(m, size=5, replace=False) for _ in range(16)]
        index = BitmapIndex.from_sets(sparse_sets, m)
        bitmap_run = run_bitmap_pair_counts(index, tile_size=16)

        coll = BatmapCollection.build(sparse_sets, m, rng=0)
        batmap_run = run_batmap_pair_counts(coll, tile_size=16)
        # For sparse sets the batmap kernel moves fewer bytes than the dense
        # bitmap kernel (bounded by the compression floor r >= 2**shift), and
        # the resident representation is smaller as well.
        assert batmap_run.total_device_bytes < bitmap_run.total_device_bytes / 2
        assert coll.memory_bytes < index.memory_bytes / 2


class TestBatchComputeMode:
    def test_batch_counts_match_kernel_counts(self, rng):
        m = 700
        sets = random_sets(rng, 14, m, max_size=120)
        coll = BatmapCollection.build(sets, m, rng=6)
        kernel = run_batmap_pair_counts(coll, tile_size=8)
        batch = run_batmap_pair_counts(coll, compute="batch")
        assert np.array_equal(kernel.counts, batch.counts)
        assert batch.tiles == 0
        assert batch.device_seconds == 0.0       # no launches simulated
        assert batch.transfer_seconds > 0        # the upload is still modelled

    def test_batch_counts_are_a_private_copy(self, rng):
        m = 300
        coll = BatmapCollection.build(random_sets(rng, 5, m, max_size=60), m, rng=0)
        first = run_batmap_pair_counts(coll, compute="batch")
        first.counts[0, 0] = -1
        second = run_batmap_pair_counts(coll, compute="batch")
        assert second.counts[0, 0] != -1

    def test_invalid_compute_rejected(self, rng):
        m = 200
        coll = BatmapCollection.build(random_sets(rng, 3, m, max_size=30), m, rng=0)
        with pytest.raises(ValueError):
            run_batmap_pair_counts(coll, compute="quantum")


class TestParallelComputeMode:
    def test_parallel_counts_match_kernel_counts(self, rng):
        """Small input: the parallel mode falls back to the batch engine."""
        m = 700
        sets = random_sets(rng, 14, m, max_size=120)
        coll = BatmapCollection.build(sets, m, rng=6)
        kernel = run_batmap_pair_counts(coll, tile_size=8)
        parallel = run_batmap_pair_counts(coll, compute="parallel", workers=2)
        assert np.array_equal(kernel.counts, parallel.counts)
        assert parallel.tiles == 0
        assert parallel.device_seconds == 0.0

    def test_parallel_forced_through_pool(self, rng, monkeypatch):
        """Lowering the fallback floor drives the counts through real workers."""
        import repro.parallel.executor as executor_module

        monkeypatch.setattr(executor_module, "PARALLEL_MIN_SETS", 1)
        m = 700
        sets = random_sets(rng, 12, m, max_size=120)
        coll = BatmapCollection.build(sets, m, rng=2)
        batch = run_batmap_pair_counts(coll, compute="batch")
        parallel = run_batmap_pair_counts(coll, compute="parallel", workers=2)
        assert np.array_equal(batch.counts, parallel.counts)
