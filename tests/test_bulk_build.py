"""Tests for the vectorized bulk-construction engine (core/bulk_build.py).

The serial inserter (:func:`repro.core.builder.place_set`) is the oracle
throughout: bulk placements must satisfy the same 2-of-3 invariants, decode
back to the same sets, and — because pair counts are placement-independent
and failing sets are rebuilt with the oracle — produce collections whose
count matrices and failed lists are bit-identical to serially built ones.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.builder import EMPTY, place_set
from repro.core.bulk_build import (
    bulk_build_sets,
    bulk_place_group,
    bulk_place_sets,
    pack_group_words,
)
from repro.core.collection import BatmapCollection, _dedup_sorted
from repro.core.config import BatmapConfig
from repro.core.hashing import HashFamily
from repro.core.intersection import count_common
from repro.utils.bits import pack_bytes_to_words


def make_family(m: int, seed: int = 0, config: BatmapConfig | None = None) -> HashFamily:
    cfg = config or BatmapConfig()
    return HashFamily.create(m, shift=cfg.shift_for_universe(m), rng=seed)


def random_sets(rng, n_sets, universe, max_size=60, min_size=0):
    return [
        np.sort(rng.choice(universe, size=int(rng.integers(min_size, max_size + 1)),
                           replace=False))
        for _ in range(n_sets)
    ]


# --------------------------------------------------------------------------- #
# Placement invariants
# --------------------------------------------------------------------------- #
class TestBulkPlacements:
    def test_placements_validate_and_round_trip(self):
        rng = np.random.default_rng(0)
        universe = 2048
        family = make_family(universe)
        sets = random_sets(rng, 40, universe, max_size=100)
        placements = bulk_place_sets(sets, family, 256)
        assert len(placements) == len(sets)
        for s, p in zip(sets, placements):
            p.validate(family)
            recovered = np.union1d(p.stored_elements,
                                   np.asarray(p.failed, dtype=np.int64))
            assert np.array_equal(recovered, np.unique(s))

    def test_empty_and_singleton_sets(self):
        universe = 512
        family = make_family(universe)
        sets = [np.array([], dtype=np.int64), np.array([7]), np.array([0]),
                np.array([511, 3])]
        placements = bulk_place_sets(sets, family, 16)
        for s, p in zip(sets, placements):
            p.validate(family)
            assert not p.failed
            assert np.array_equal(p.stored_elements, np.unique(s))
        # a singleton occupies exactly two slots
        assert int((placements[1].rows != EMPTY).sum()) == 2

    def test_duplicates_ignored(self):
        family = make_family(64)
        (p,) = bulk_place_sets([np.array([5, 5, 5, 9])], family, 8)
        assert np.array_equal(p.stored_elements, np.array([5, 9]))

    def test_rejects_out_of_universe_elements(self):
        family = make_family(64)
        with pytest.raises(ValueError):
            bulk_place_sets([np.array([64])], family, 8)

    def test_rejects_non_power_of_two_range(self):
        family = make_family(64)
        with pytest.raises(ValueError):
            bulk_place_sets([np.array([1, 2])], family, 6)

    def test_failure_heavy_low_range_matches_serial(self):
        """At r below 2|S| failures are forced; the oracle fallback makes the
        bulk failed lists exactly the serial ones."""
        rng = np.random.default_rng(3)
        universe = 512
        family = make_family(universe)
        sets = random_sets(rng, 25, universe, max_size=30, min_size=20)
        r = 16  # far below 2|S|: heavy, forced failure pressure
        bulk = bulk_place_sets(sets, family, r)
        for s, p in zip(sets, bulk):
            p.validate(family)
            serial = place_set(np.unique(s), family, r)
            assert p.failed == serial.failed
            assert np.array_equal(p.stored_elements, serial.stored_elements)
        assert any(p.failed for p in bulk)  # the config really is failure-heavy

    def test_no_oracle_fallback_still_validates(self):
        rng = np.random.default_rng(4)
        universe = 512
        family = make_family(universe)
        sets = random_sets(rng, 25, universe, max_size=30, min_size=20)
        placements = bulk_place_sets(sets, family, 16, oracle_on_failure=False)
        for p in placements:
            p.validate(family)

    @settings(deadline=None, max_examples=25)
    @given(seed=st.integers(0, 10_000), r_exp=st.integers(3, 7))
    def test_placement_invariants_property(self, seed, r_exp):
        rng = np.random.default_rng(seed)
        universe = 1024
        family = make_family(universe, seed=seed % 7)
        sets = random_sets(rng, 8, universe, max_size=40)
        for p, s in zip(bulk_place_sets(sets, family, 1 << r_exp), sets):
            p.validate(family)
            recovered = np.union1d(p.stored_elements,
                                   np.asarray(p.failed, dtype=np.int64))
            assert np.array_equal(recovered, np.unique(s))

    def test_grouping_is_result_invariant(self):
        """Per-set results cannot depend on which other sets share the group."""
        rng = np.random.default_rng(9)
        universe = 2048
        family = make_family(universe)
        sets = random_sets(rng, 12, universe, max_size=60)
        together = bulk_place_sets(sets, family, 128)
        for k, s in enumerate(sets):
            (alone,) = bulk_place_sets([s], family, 128)
            assert np.array_equal(alone.rows, together[k].rows)
            assert alone.failed == together[k].failed


# --------------------------------------------------------------------------- #
# Group encoding / packing
# --------------------------------------------------------------------------- #
class TestGroupEncoding:
    def test_encode_matches_per_set_device_packing(self):
        """Group-packed words must equal Batmap.device_array + word packing."""
        from repro.core.batmap import Batmap

        rng = np.random.default_rng(1)
        universe = 1024
        config = BatmapConfig()
        family = make_family(universe, config=config)
        sets = [np.unique(rng.choice(universe, size=40)) for _ in range(6)]
        r, r0 = 256, 64
        group = bulk_place_group([_dedup_sorted(s) for s in sets], family, r, config)
        entries = group.encode(family, config)
        packed, width = pack_group_words(entries, r0)
        assert width == 3 * r // 4
        for k in range(len(sets)):
            bm = Batmap(family=family, config=config, r=r, entries=entries[k],
                        set_size=int(np.unique(sets[k]).size))
            reference = pack_bytes_to_words(bm.device_array(r0))
            assert np.array_equal(packed[k, :reference.size], reference)
            assert not packed[k, reference.size:].any()  # zero padding

    def test_bulk_build_sets_orders_and_stats(self):
        rng = np.random.default_rng(2)
        universe = 1024
        config = BatmapConfig()
        family = make_family(universe, config=config)
        sets = [np.unique(rng.choice(universe, size=n)) for n in (5, 60, 17, 33)]
        rs = [max(4, config.range_for_size(s.size, universe)) for s in sets]
        built = bulk_build_sets(sets, rs, family, config)
        for s, r, b in zip(sets, rs, built):
            assert b.r == r
            assert b.entries.shape == (3, r)
            assert b.stats.inserted == s.size
            assert b.stats.total_moves >= 2 * s.size - len(b.failed)


# --------------------------------------------------------------------------- #
# Collection-level equivalence with the serial oracle
# --------------------------------------------------------------------------- #
class TestBulkCollections:
    @pytest.fixture(scope="class")
    def workload(self):
        rng = np.random.default_rng(7)
        universe = 4096
        sets = random_sets(rng, 120, universe, max_size=150)
        return sets, universe

    def _build_pair(self, sets, universe, **kwargs):
        host = BatmapCollection.build(sets, universe, rng=5,
                                      build_compute="host", **kwargs)
        bulk = BatmapCollection.build(sets, universe, rng=5,
                                      build_compute="bulk", **kwargs)
        return host, bulk

    def test_counts_identical_batch_engine(self, workload):
        sets, universe = workload
        host, bulk = self._build_pair(sets, universe)
        assert host.build_plan.backend == "host"
        assert bulk.build_plan.backend == "bulk"
        assert np.array_equal(host.count_all_pairs(), bulk.count_all_pairs())

    def test_counts_identical_per_pair_reference(self, workload):
        sets, universe = workload
        host, bulk = self._build_pair(sets, universe)
        for i, j in [(0, 1), (3, 77), (50, 119), (12, 12)]:
            assert (count_common(host.batmap(i), host.batmap(j))
                    == count_common(bulk.batmap(i), bulk.batmap(j)))

    def test_counts_identical_parallel_executor(self, workload):
        from repro.parallel.executor import ParallelPairCounter

        sets, universe = workload
        host, bulk = self._build_pair(sets, universe)
        with ParallelPairCounter(bulk, workers=2) as counter:
            parallel_counts = counter.count_all_pairs()
        assert np.array_equal(parallel_counts, host.count_all_pairs())

    def test_failed_lists_identical(self, workload):
        sets, universe = workload
        host, bulk = self._build_pair(sets, universe)
        assert host.failed_insertions() == bulk.failed_insertions()
        for k in range(len(sets)):
            assert host.batmap(k).failed == bulk.batmap(k).failed

    def test_decode_round_trip(self, workload):
        sets, universe = workload
        _, bulk = self._build_pair(sets, universe)
        for k in range(len(sets)):
            bm = bulk.batmap(k)
            recovered = np.union1d(bm.decode_elements(),
                                   np.asarray(bm.failed, dtype=np.int64))
            assert np.array_equal(recovered, np.unique(sets[k]))

    def test_prebuilt_device_buffer_matches_lazy_packing(self, workload):
        sets, universe = workload
        _, bulk = self._build_pair(sets, universe)
        prebuilt = bulk._device_buffer
        assert prebuilt is not None  # bulk builds pre-assemble the buffer
        bulk._device_buffer = None
        lazy = bulk.device_buffer()
        assert np.array_equal(prebuilt.words, lazy.words)
        assert np.array_equal(prebuilt.offsets, lazy.offsets)
        assert np.array_equal(prebuilt.widths, lazy.widths)
        assert prebuilt.r0 == lazy.r0

    def test_unsorted_collection_counts_identical(self, workload):
        sets, universe = workload
        host, bulk = self._build_pair(sets, universe, sort_by_size=False)
        assert np.array_equal(host.count_all_pairs(), bulk.count_all_pairs())

    @pytest.mark.parametrize("payload_bits", [5, 7, 9])
    def test_counts_identical_across_payload_widths(self, payload_bits):
        rng = np.random.default_rng(11)
        config = BatmapConfig(payload_bits=payload_bits)
        universe = 300
        sets = random_sets(rng, 30, universe, max_size=40)
        host, bulk = (BatmapCollection.build(sets, universe, rng=2, config=config,
                                             build_compute=mode)
                      for mode in ("host", "bulk"))
        assert np.array_equal(host.count_all_pairs(), bulk.count_all_pairs())
        assert host.failed_insertions() == bulk.failed_insertions()
        if payload_bits > 7:
            assert bulk._device_buffer is None  # no packed form for wide entries

    def test_failure_heavy_collection_identical(self):
        """range_multiplier=1.0 voids the insertion-time bound: failures are
        common, and the oracle fallback must keep bulk == host exactly."""
        rng = np.random.default_rng(13)
        config = BatmapConfig(range_multiplier=1.0)
        universe = 2048
        sets = random_sets(rng, 60, universe, max_size=120, min_size=40)
        host = BatmapCollection.build(sets, universe, rng=3, config=config,
                                      build_compute="host")
        bulk = BatmapCollection.build(sets, universe, rng=3, config=config,
                                      build_compute="bulk")
        assert sum(len(v) for v in host.failed_insertions().values()) > 0
        assert host.failed_insertions() == bulk.failed_insertions()
        assert np.array_equal(host.count_all_pairs(), bulk.count_all_pairs())

    def test_empty_and_tiny_sets_in_collection(self):
        universe = 256
        sets = [np.array([], dtype=np.int64), np.array([3]), np.arange(50),
                np.array([], dtype=np.int64)]
        host, bulk = self._build_pair(sets, universe)
        assert np.array_equal(host.count_all_pairs(), bulk.count_all_pairs())
        assert len(bulk.batmap(0)) == 0 and len(bulk.batmap(1)) == 1

    def test_auto_plan_uses_host_below_floor_and_bulk_above(self):
        rng = np.random.default_rng(17)
        universe = 4096
        small = random_sets(rng, 10, universe, max_size=20)
        coll = BatmapCollection.build(small, universe, rng=1)
        assert coll.build_plan.backend == "host"
        large = random_sets(rng, 80, universe, max_size=100, min_size=40)
        coll = BatmapCollection.build(large, universe, rng=1)
        assert coll.build_plan.backend == "bulk"


# --------------------------------------------------------------------------- #
# Multiprocess bulk build
# --------------------------------------------------------------------------- #
class TestParallelBulkBuild:
    def test_parallel_build_bit_identical(self, monkeypatch):
        from repro.core import plan as plan_module

        monkeypatch.setattr(plan_module, "PARALLEL_BUILD_MIN_SETS", 1)
        monkeypatch.setattr(plan_module, "PARALLEL_BUILD_MIN_ELEMENTS", 1)
        rng = np.random.default_rng(19)
        universe = 2048
        sets = random_sets(rng, 50, universe, max_size=80)
        parallel = BatmapCollection.build(sets, universe, rng=4,
                                          build_compute="parallel",
                                          build_workers=2)
        assert parallel.build_plan.backend == "parallel"
        bulk = BatmapCollection.build(sets, universe, rng=4,
                                      build_compute="bulk")
        for k in range(len(sets)):
            assert np.array_equal(parallel.batmap(k).entries,
                                  bulk.batmap(k).entries)
            assert parallel.batmap(k).failed == bulk.batmap(k).failed
        assert np.array_equal(parallel._device_buffer.words,
                              bulk._device_buffer.words)

    def test_parallel_build_no_shm_residue(self, monkeypatch):
        import glob

        from repro.core import plan as plan_module

        monkeypatch.setattr(plan_module, "PARALLEL_BUILD_MIN_SETS", 1)
        monkeypatch.setattr(plan_module, "PARALLEL_BUILD_MIN_ELEMENTS", 1)
        rng = np.random.default_rng(23)
        sets = random_sets(rng, 20, 512, max_size=30)
        BatmapCollection.build(sets, 512, rng=4, build_compute="parallel",
                               build_workers=2)
        assert not glob.glob("/dev/shm/repro-batmap-*")

    def test_parallel_demotes_below_floor(self):
        rng = np.random.default_rng(29)
        sets = random_sets(rng, 10, 512, max_size=30)
        coll = BatmapCollection.build(sets, 512, rng=4,
                                      build_compute="parallel",
                                      build_workers=2)
        assert coll.build_plan.backend == "bulk"


# --------------------------------------------------------------------------- #
# Pipeline integration (mining / matrix)
# --------------------------------------------------------------------------- #
class TestPipelineIntegration:
    def test_miner_bulk_build_same_supports(self):
        from repro.datasets.synthetic import generate_density_instance
        from repro.mining.pair_mining import BatmapPairMiner

        db = generate_density_instance(60, 0.2, 4000, rng=0)
        reports = {}
        for mode in ("host", "bulk"):
            miner = BatmapPairMiner(compute="host", build_compute=mode)
            reports[mode] = miner.mine(db, min_support=2, rng=9)
        assert reports["bulk"].build_backend == "bulk"
        assert reports["host"].build_backend == "host"
        assert np.array_equal(reports["host"].supports.counts,
                              reports["bulk"].supports.counts)

    def test_multiply_batmap_bulk_build(self):
        from repro.matrix.boolean import SparseBooleanMatrix
        from repro.matrix.multiply import multiply_batmap, multiply_dense

        rng = np.random.default_rng(31)
        a = SparseBooleanMatrix.random(30, 80, density=0.3, rng=rng)
        b = SparseBooleanMatrix.random(80, 25, density=0.3, rng=rng)
        product = multiply_batmap(a, b, rng=3, build_compute="bulk")
        assert np.array_equal(product, multiply_dense(a, b))

    def test_levelwise_mining_bulk_build(self):
        from repro.datasets.synthetic import generate_density_instance
        from repro.mining.itemsets import BatmapItemsetMiner
        from repro.mining.pair_mining import BatmapPairMiner

        db = generate_density_instance(30, 0.3, 2500, rng=1)
        results = {}
        for mode in ("host", "bulk"):
            miner = BatmapItemsetMiner(
                BatmapPairMiner(compute="host", build_compute=mode), max_size=3)
            results[mode] = miner.mine(db, min_support=3, rng=9).itemsets
        assert results["host"] == results["bulk"]

    def test_cli_build_compute_flag(self, tmp_path):
        import io

        from repro.cli import main
        from repro.datasets.fimi_io import write_fimi
        from repro.datasets.synthetic import generate_density_instance

        db = generate_density_instance(40, 0.2, 2000, rng=2)
        path = tmp_path / "db.fimi"
        write_fimi(db, path)
        out = io.StringIO()
        assert main(["mine", str(path), "--min-support", "3",
                     "--compute", "host", "--build-compute", "bulk"],
                    out=out) == 0
        text = out.getvalue()
        assert "build backend: bulk" in text

    def test_cli_levelwise_reports_build_backend(self, tmp_path):
        import io

        from repro.cli import main
        from repro.datasets.fimi_io import write_fimi
        from repro.datasets.synthetic import generate_density_instance

        db = generate_density_instance(30, 0.3, 2500, rng=1)
        path = tmp_path / "db.fimi"
        write_fimi(db, path)
        out = io.StringIO()
        assert main(["mine", str(path), "--min-support", "3", "--max-size", "3",
                     "--compute", "host", "--build-compute", "parallel"],
                    out=out) == 0
        # Small input: the explicit parallel request demotes, and says so.
        assert "build backend: bulk (parallel fell back" in out.getvalue()

    def test_cli_intersect_build_compute(self, tmp_path):
        import io

        from repro.cli import main

        (tmp_path / "a.txt").write_text(" ".join(map(str, range(0, 400, 2))))
        (tmp_path / "b.txt").write_text(" ".join(map(str, range(0, 400, 3))))
        out = io.StringIO()
        assert main(["intersect", str(tmp_path / "a.txt"), str(tmp_path / "b.txt"),
                     "--compute", "auto", "--build-compute", "bulk"],
                    out=out) == 0
        text = out.getvalue()
        assert "intersection size (batmap): 67" in text
        assert "build backend: bulk" in text

    def test_cli_intersect_multiway_build_compute(self, tmp_path):
        import io

        from repro.cli import main

        for name, step in (("a", 2), ("b", 3), ("c", 5)):
            (tmp_path / f"{name}.txt").write_text(
                " ".join(map(str, range(0, 600, step))))
        out = io.StringIO()
        assert main(["intersect", str(tmp_path / "a.txt"),
                     str(tmp_path / "b.txt"), str(tmp_path / "c.txt"),
                     "--build-compute", "bulk"], out=out) == 0
        text = out.getvalue()
        assert "intersection size (batmap): 20" in text  # multiples of 30 < 600
        assert "build backend: bulk" in text
