"""Tests for the compressed Batmap representation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.batmap import Batmap, build_batmap
from repro.core.builder import place_set
from repro.core.config import BatmapConfig
from repro.core.errors import LayoutError
from repro.core.hashing import HashFamily


def make_family(m: int, seed: int = 0, cfg: BatmapConfig | None = None) -> HashFamily:
    cfg = cfg or BatmapConfig()
    return HashFamily.create(m, shift=cfg.shift_for_universe(m), rng=seed)


class TestBuildBatmap:
    def test_roundtrip_decode(self):
        m = 1000
        elements = np.array([3, 17, 512, 999, 42])
        bm = build_batmap(elements, m, rng=0)
        assert np.array_equal(bm.decode_elements(), np.sort(elements))

    def test_contains(self):
        m = 600
        elements = np.array([1, 2, 3, 100, 300, 599])
        bm = build_batmap(elements, m, rng=1)
        assert all(bm.contains(int(x)) for x in elements)
        assert not bm.contains(4)
        assert not bm.contains(-1)
        assert not bm.contains(600)

    def test_accepts_python_iterables(self):
        bm = build_batmap([5, 1, 5, 3], 64, rng=0)
        assert bm.set_size == 3
        assert np.array_equal(bm.decode_elements(), np.array([1, 3, 5]))

    def test_empty_set(self):
        bm = build_batmap([], 64, rng=0)
        assert bm.set_size == 0
        assert bm.decode_elements().size == 0
        assert not bm.contains(3)

    def test_family_mismatch_rejected(self):
        family = make_family(32)
        with pytest.raises(ValueError):
            build_batmap([1, 2], 64, family=family)

    def test_explicit_range_used(self):
        bm = build_batmap([1, 2, 3], 64, r=32, rng=0)
        assert bm.r == 32

    def test_memory_is_three_r_bytes(self):
        bm = build_batmap(np.arange(50), 1024, rng=0)
        assert bm.memory_bytes == 3 * bm.r
        assert bm.entries.nbytes == bm.memory_bytes

    def test_density(self):
        bm = build_batmap(np.arange(50), 1000, rng=0)
        assert bm.density() == pytest.approx(0.05)

    def test_len_counts_set_size(self):
        bm = build_batmap(np.arange(7), 64, rng=0)
        assert len(bm) == 7


class TestEncoding:
    def test_entries_are_uint8_with_null_zero(self):
        bm = build_batmap(np.arange(20), 256, rng=0)
        assert bm.entries.dtype == np.uint8
        occupied = int((bm.entries != 0).sum())
        assert occupied == 2 * 20  # each element stored twice, NULL elsewhere

    def test_indicator_bits_exactly_one_per_element(self):
        """Per element, exactly one of its two copies carries indicator bit 1."""
        m = 512
        cfg = BatmapConfig()
        family = make_family(m, seed=2, cfg=cfg)
        elements = np.arange(0, 512, 7)
        r = cfg.range_for_size(elements.size, m)
        placement = place_set(elements, family, r, cfg)
        bm = Batmap.from_placement(placement, family, cfg)
        for x in elements.tolist():
            bits = []
            for t, p in placement.occurrences(x):
                bits.append(int(bm.entries[t, p]) >> 7)
            assert sorted(bits) == [0, 1]

    def test_payload_overflow_detected(self):
        """A family with an insufficient shift must be rejected at encode time."""
        m = 4096
        family = HashFamily.create(m, shift=0, rng=0)  # payloads up to 4096 >> 7 bits
        placement = place_set(np.array([1, 2000, 4000]), family, 64)
        with pytest.raises(LayoutError):
            Batmap.from_placement(placement, family, BatmapConfig())

    def test_constructor_validates_shape(self):
        family = make_family(64)
        with pytest.raises(ValueError):
            Batmap(family=family, config=BatmapConfig(), r=8,
                   entries=np.zeros((3, 4), dtype=np.uint8), set_size=0)

    def test_constructor_validates_dtype(self):
        family = make_family(64)
        with pytest.raises(ValueError):
            Batmap(family=family, config=BatmapConfig(), r=4,
                   entries=np.zeros((3, 4), dtype=np.int32), set_size=0)


class TestPackingAndLayout:
    def test_packed_rows_shape(self):
        bm = build_batmap(np.arange(30), 256, rng=0)
        assert bm.packed_rows.shape == (3, bm.r // 4)
        assert bm.packed_rows.dtype == np.uint32

    def test_packed_rows_padding_for_tiny_ranges(self):
        bm = build_batmap([1], 64, r=2, rng=0)
        assert bm.packed_rows.shape[1] == 1  # padded to one word

    def test_device_array_contains_all_entries(self):
        bm = build_batmap(np.arange(40), 512, rng=0)
        dev = bm.device_array(r0=4)
        assert dev.size == 3 * bm.r
        assert np.array_equal(np.sort(dev[dev != 0]), np.sort(bm.entries[bm.entries != 0].ravel()))

    def test_device_array_blocked_layout(self):
        """Block q of the device array is [row0 slice q | row1 slice q | row2 slice q]."""
        bm = build_batmap(np.arange(40), 512, rng=0)
        r0 = 8
        dev = bm.device_array(r0=r0)
        blocks = bm.r // r0
        view = dev.reshape(blocks, 3 * r0)
        for q in range(blocks):
            for t in range(3):
                assert np.array_equal(view[q, t * r0:(t + 1) * r0],
                                      bm.entries[t, q * r0:(q + 1) * r0])

    def test_device_array_rejects_r0_above_r(self):
        bm = build_batmap(np.arange(10), 64, rng=0)
        with pytest.raises(ValueError):
            bm.device_array(r0=2 * bm.r)

    def test_width_words(self):
        bm = build_batmap(np.arange(10), 64, rng=0)
        assert bm.width_words == bm.packed_rows.shape[1]


class TestFailureHandling:
    def test_failed_elements_not_decoded(self):
        m = 2048
        cfg = BatmapConfig(max_loop=8)
        family = make_family(m, seed=3, cfg=cfg)
        elements = np.arange(300)
        placement = place_set(elements, family, 128, cfg)
        assert placement.failed
        bm = Batmap.from_placement(placement, family, cfg, set_size=elements.size)
        decoded = set(bm.decode_elements().tolist())
        assert decoded.isdisjoint(set(bm.failed))
        assert bm.stored_count == bm.set_size - len(bm.failed)

    def test_contains_consults_failed_list(self):
        """Regression: failed elements count towards len(bm) and must be members.

        An element whose cuckoo insertion failed has no stored copies, but it
        is still part of the represented set (the repair path re-adds its
        contributions), so ``contains`` must report it present.
        """
        m = 2048
        cfg = BatmapConfig(max_loop=8)
        family = make_family(m, seed=3, cfg=cfg)
        elements = np.arange(300)
        placement = place_set(elements, family, 128, cfg)
        assert placement.failed
        bm = Batmap.from_placement(placement, family, cfg, set_size=elements.size)
        assert len(bm) == elements.size
        for failed in bm.failed:
            assert bm.contains(int(failed))
        # every element of the set — stored or failed — is a member
        assert all(bm.contains(int(e)) for e in elements)
        # out-of-universe probes still miss
        assert not bm.contains(-1)
        assert not bm.contains(m)

    @given(st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_property_decode_matches_input_minus_failed(self, seed):
        rng = np.random.default_rng(seed)
        m = 1024
        cfg = BatmapConfig()
        family = make_family(m, seed=seed % 13, cfg=cfg)
        size = int(rng.integers(0, 200))
        elements = np.sort(rng.choice(m, size=size, replace=False))
        bm = build_batmap(elements, m, family=family, rng=seed)
        expected = np.setdiff1d(elements, np.array(bm.failed, dtype=np.int64))
        assert np.array_equal(bm.decode_elements(), expected)
