"""Tests for the dataset containers, generators and FIMI I/O."""

import io

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import DataFormatError
from repro.datasets.fimi_io import parse_fimi_lines, read_fimi, write_fimi
from repro.datasets.ibm_quest import QuestParameters, generate_quest_dataset, generate_t40i10
from repro.datasets.synthetic import generate_density_instance, generate_fixed_transactions
from repro.datasets.transactions import TransactionDatabase
from repro.datasets.webdocs import generate_webdocs_like, vocabulary_growth


class TestTransactionDatabase:
    def test_basic_statistics(self):
        db = TransactionDatabase([[0, 1], [1, 2, 3], [2]], n_items=4)
        assert db.n_transactions == 3
        assert db.total_items == 6
        assert db.density == pytest.approx(6 / 12)
        assert db.average_transaction_length == pytest.approx(2.0)
        assert db.distinct_items_used() == 4
        assert len(db) == 3

    def test_item_supports(self):
        db = TransactionDatabase([[0, 1], [1, 2], [1]], n_items=3)
        assert db.item_supports().tolist() == [1, 3, 1]

    def test_duplicates_and_sorting_normalised(self):
        db = TransactionDatabase([[3, 1, 3, 1]], n_items=4)
        assert db.transactions[0].tolist() == [1, 3]

    def test_invalid_items_rejected(self):
        with pytest.raises(DataFormatError):
            TransactionDatabase([[5]], n_items=4)
        with pytest.raises(DataFormatError):
            TransactionDatabase([[-1]], n_items=4)
        with pytest.raises(DataFormatError):
            TransactionDatabase([], n_items=0)

    def test_tidlists_roundtrip(self):
        db = TransactionDatabase([[0, 1], [1, 2], [0, 2]], n_items=3)
        tidlists = db.tidlists()
        assert tidlists[0].tolist() == [0, 2]
        assert tidlists[1].tolist() == [0, 1]
        assert tidlists[2].tolist() == [1, 2]
        assert db.tidlists() is tidlists  # cached

    def test_prefix(self):
        db = TransactionDatabase([[0], [1], [2]], n_items=3)
        pre = db.prefix(2)
        assert pre.n_transactions == 2
        assert pre.n_items == 3
        assert db.prefix(100).n_transactions == 3

    def test_filter_by_support_relabels_densely(self):
        db = TransactionDatabase([[0, 5], [5, 9], [5]], n_items=10)
        filtered, kept = db.filter_by_support(2)
        assert kept.tolist() == [5]
        assert filtered.n_items == 1
        assert [t.tolist() for t in filtered.transactions] == [[0], [0], [0]]

    def test_filter_keeps_nothing(self):
        db = TransactionDatabase([[0], [1]], n_items=2)
        filtered, kept = db.filter_by_support(5)
        assert kept.size == 0
        assert filtered.total_items == 0

    def test_split_parts(self):
        db = TransactionDatabase([[0]] * 10, n_items=1)
        parts = db.split(4)
        assert len(parts) == 4
        assert sum(p.n_transactions for p in parts) == 10
        with pytest.raises(ValueError):
            db.split(0)


class TestSyntheticGenerator:
    def test_reaches_target_size(self):
        db = generate_density_instance(50, 0.1, 2000, rng=0)
        assert db.total_items >= 2000
        assert db.n_items == 50

    def test_density_close_to_requested(self):
        db = generate_density_instance(200, 0.05, 20_000, rng=1)
        assert db.density == pytest.approx(0.05, rel=0.15)

    def test_deterministic_given_seed(self):
        a = generate_density_instance(30, 0.2, 500, rng=7)
        b = generate_density_instance(30, 0.2, 500, rng=7)
        assert a.n_transactions == b.n_transactions
        assert all(np.array_equal(x, y) for x, y in zip(a.transactions, b.transactions))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            generate_density_instance(0, 0.1, 100)
        with pytest.raises(ValueError):
            generate_density_instance(10, 0.0, 100)
        with pytest.raises(ValueError):
            generate_density_instance(10, 1.5, 100)
        with pytest.raises(ValueError):
            generate_density_instance(10, 0.1, 0)

    def test_fixed_transactions(self):
        db = generate_fixed_transactions(40, 0.25, 100, rng=3)
        assert db.n_transactions == 100
        assert 0 < db.density < 1

    @given(st.integers(1, 60), st.floats(0.02, 0.5), st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_property_items_in_range(self, n_items, density, seed):
        db = generate_fixed_transactions(n_items, density, 20, rng=seed)
        for t in db.transactions:
            assert t.size == 0 or (t.min() >= 0 and t.max() < n_items)


class TestQuestGenerator:
    def test_shape_and_ranges(self):
        db = generate_quest_dataset(QuestParameters(n_items=100, n_transactions=50), rng=0)
        assert db.n_transactions == 50
        assert db.n_items == 100
        assert all(t.size >= 1 for t in db.transactions)

    def test_average_length_roughly_matches(self):
        params = QuestParameters(n_items=500, n_transactions=300, avg_transaction_length=12.0)
        db = generate_quest_dataset(params, rng=1)
        assert 6.0 <= db.average_transaction_length <= 20.0

    def test_t40_surrogate_is_denser(self):
        db = generate_t40i10(n_transactions=100, n_items=500, rng=2)
        assert db.average_transaction_length > 15

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            QuestParameters(n_items=0)
        with pytest.raises(ValueError):
            QuestParameters(avg_transaction_length=-1)

    def test_correlation_creates_cooccurrence(self):
        """Quest data must have more structure than independent Bernoulli data."""
        db = generate_quest_dataset(QuestParameters(n_items=300, n_transactions=200), rng=3)
        supports = db.item_supports()
        # popular items should be far more frequent than the median item
        assert supports.max() >= 4 * max(1, int(np.median(supports[supports > 0])))


class TestWebdocsSurrogate:
    def test_vocabulary_grows_with_prefix(self):
        db = generate_webdocs_like(400, vocabulary_size=20_000, rng=0)
        growth = vocabulary_growth(db, [50, 100, 200, 400])
        sizes = [g[1] for g in growth]
        assert sizes == sorted(sizes)
        assert sizes[-1] > sizes[0] * 1.5  # still discovering new words at 8x the prefix

    def test_documents_nonempty_and_in_range(self):
        db = generate_webdocs_like(50, vocabulary_size=5000, rng=1)
        assert db.n_transactions == 50
        for t in db.transactions:
            assert t.size >= 1
            assert t.max() < 5000

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            generate_webdocs_like(0)
        with pytest.raises(ValueError):
            generate_webdocs_like(10, vocabulary_size=0)


class TestFimiIO:
    def test_parse_basic(self):
        db = parse_fimi_lines(["1 2 3", "2 4", "", "# comment", "0"])
        assert db.n_transactions == 3
        assert db.n_items == 5
        assert db.transactions[0].tolist() == [1, 2, 3]

    def test_parse_rejects_garbage(self):
        with pytest.raises(DataFormatError):
            parse_fimi_lines(["1 banana 3"])
        with pytest.raises(DataFormatError):
            parse_fimi_lines(["-1 2"])
        with pytest.raises(DataFormatError):
            parse_fimi_lines([])
        with pytest.raises(DataFormatError):
            parse_fimi_lines(["5"], n_items=3)

    def test_max_transactions(self):
        db = parse_fimi_lines(["0", "1", "2"], max_transactions=2)
        assert db.n_transactions == 2

    def test_roundtrip_through_file(self, tmp_path):
        original = TransactionDatabase([[0, 3], [1], [2, 3, 4]], n_items=5)
        path = tmp_path / "data.fimi"
        write_fimi(original, path)
        loaded = read_fimi(path)
        assert loaded.n_transactions == original.n_transactions
        assert all(np.array_equal(a, b) for a, b in
                   zip(loaded.transactions, original.transactions))

    def test_write_to_handle(self):
        db = TransactionDatabase([[0, 1]], n_items=2)
        buffer = io.StringIO()
        write_fimi(db, buffer)
        assert buffer.getvalue() == "0 1\n"
