"""Tests for the vectorised levelwise support counter (repro.mining.levelwise)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets.synthetic import generate_density_instance
from repro.datasets.transactions import TransactionDatabase
from repro.mining.itemsets import BatmapItemsetMiner
from repro.mining.levelwise import (
    TransactionBitmap,
    count_candidate_supports,
    scan_supports,
)
from repro.mining.pair_mining import BatmapPairMiner


def random_candidates(rng, n_items, k, n_candidates):
    out = []
    for _ in range(n_candidates):
        out.append(np.sort(rng.choice(n_items, k, replace=False)))
    return np.asarray(out, dtype=np.int64)


class TestTransactionBitmap:
    def test_shape_and_bits(self):
        db = TransactionDatabase(
            transactions=[[0, 2], [1], [0, 1, 2]], n_items=3)
        bm = TransactionBitmap.from_database(db)
        assert bm.words.shape == (3, 1)
        assert bm.n_transactions == 3
        # item 0 in transactions 0 and 2 -> bits 0 and 2
        assert int(bm.words[0, 0]) == 0b101
        assert int(bm.words[1, 0]) == 0b110
        assert int(bm.words[2, 0]) == 0b101

    def test_many_transactions_span_words(self):
        transactions = [[0] if t % 3 == 0 else [1] for t in range(130)]
        db = TransactionDatabase(transactions=transactions, n_items=2)
        bm = TransactionBitmap.from_database(db)
        assert bm.words.shape == (2, 3)
        supports = count_candidate_supports(bm, [[0]])
        assert supports[0] == sum(1 for t in range(130) if t % 3 == 0)

    def test_validation(self):
        bm = TransactionBitmap.from_database(
            TransactionDatabase(transactions=[[0]], n_items=2))
        with pytest.raises(ValueError):
            count_candidate_supports(bm, [[5]])
        with pytest.raises(ValueError):
            count_candidate_supports(bm, [[0]], compute="quantum")
        assert count_candidate_supports(bm, np.zeros((0, 3), dtype=np.int64)).size == 0


class TestBitIdentity:
    """Levels >= 3 supports must be bit-identical to the transaction scan."""

    @given(st.integers(0, 2**31), st.integers(3, 5))
    @settings(max_examples=15, deadline=None)
    def test_property_matches_scan(self, seed, k):
        rng = np.random.default_rng(seed)
        n_items = int(rng.integers(k + 1, 30))
        db = generate_density_instance(
            n_items, float(rng.uniform(0.1, 0.4)), int(rng.integers(200, 1500)),
            rng=seed % 97)
        bitmap = TransactionBitmap.from_database(db)
        candidates = random_candidates(rng, n_items, k, int(rng.integers(1, 40)))
        vectorised = count_candidate_supports(bitmap, candidates, compute="batch")
        reference = scan_supports(db.transactions, candidates)
        assert np.array_equal(vectorised, reference)

    def test_parallel_matches_scan(self):
        rng = np.random.default_rng(11)
        db = generate_density_instance(25, 0.3, 4000, rng=3)
        bitmap = TransactionBitmap.from_database(db)
        candidates = random_candidates(rng, 25, 3, 60)
        parallel = count_candidate_supports(bitmap, candidates,
                                            compute="parallel", workers=2)
        reference = scan_supports(db.transactions, candidates)
        assert np.array_equal(parallel, reference)

    def test_auto_matches_scan(self):
        rng = np.random.default_rng(12)
        db = generate_density_instance(20, 0.35, 2000, rng=4)
        bitmap = TransactionBitmap.from_database(db)
        candidates = random_candidates(rng, 20, 4, 30)
        auto = count_candidate_supports(bitmap, candidates, compute="auto")
        assert np.array_equal(auto, scan_supports(db.transactions, candidates))


class TestMinerIntegration:
    """The itemset miner's levels >= 3 agree between scan and bitmap engines."""

    @pytest.mark.parametrize("level_compute", ["auto", "batch", "parallel"])
    def test_levels_match_scan_engine(self, level_compute):
        db = generate_density_instance(18, 0.4, 3000, rng=9)
        kwargs = dict(max_size=5)
        if level_compute == "parallel":
            kwargs["workers"] = 2
        fast = BatmapItemsetMiner(
            BatmapPairMiner(compute="host"),
            level_compute=level_compute, **kwargs,
        ).mine(db, min_support=8, rng=0)
        reference = BatmapItemsetMiner(
            BatmapPairMiner(compute="host"),
            max_size=5, level_compute="scan",
        ).mine(db, min_support=8, rng=0)
        assert fast.itemsets == reference.itemsets
        assert fast.extension_levels == reference.extension_levels
        assert fast.max_size() >= 3  # the workload must actually reach level 3

    def test_rejects_unknown_level_compute(self):
        with pytest.raises(ValueError):
            BatmapItemsetMiner(level_compute="quantum")
