"""End-to-end serving: TCP server, batcher, degradation paths, CLI wiring."""

from __future__ import annotations

import asyncio
import io
import json
import re
import socket
import threading
import time

import numpy as np
import pytest

from repro.cli import main
from repro.core.sharded import ShardedCollection
from repro.serve.batcher import QueueFullError, RequestBatcher
from repro.serve.client import ServeClient, ServeError
from repro.serve.engine import SpillQueryEngine
from repro.serve.metrics import ServerMetrics
from repro.serve.server import BackgroundServer
from repro.utils.memory import parse_memory_size
from tests.conftest import random_sets

UNIVERSE = 512
N_SETS = 16
SEED = 21


@pytest.fixture(scope="module")
def spill(tmp_path_factory):
    base = tmp_path_factory.mktemp("serve_server")
    rng = np.random.default_rng(2)
    sets = random_sets(rng, N_SETS, UNIVERSE, min_size=1, max_size=120)
    ShardedCollection.build(sets, UNIVERSE, base / "spill", rng=SEED,
                            memory_budget=parse_memory_size("64M"),
                            max_sets_per_shard=6)
    return base / "spill", sets


@pytest.fixture(scope="module")
def server(spill):
    spill_dir, _ = spill
    with BackgroundServer(spill_dir) as bg:
        yield bg


@pytest.fixture
def client(server):
    with ServeClient(server.host, server.port) as c:
        yield c


@pytest.fixture(scope="module")
def engine(spill):
    spill_dir, _ = spill
    engine = SpillQueryEngine(ShardedCollection.from_spill(spill_dir))
    yield engine
    engine.close()


class TestOperations:
    def test_ping(self, client):
        assert client.ping() == "pong"

    def test_stats(self, client, engine):
        assert client.stats() == engine.stats()

    def test_member_matches_engine(self, client, engine):
        elements = list(range(-2, 40))
        assert client.member(3, elements) == [
            bool(b) for b in engine.members(3, elements)]

    def test_count_matches_engine(self, client, engine):
        pairs = [(0, 1), (5, 9), (2, 2), (9, 5)]
        expected = [int(c) for c in engine.count_pairs(np.array(pairs))]
        assert client.count(pairs) == expected

    def test_topk_matches_engine(self, client, engine):
        assert client.topk(4, 5) == [
            [j, c] for j, c in engine.top_k(4, 5)]

    def test_multiway_matches_engine(self, client, engine):
        direct = engine.multiway([0, 1, 2])
        served = client.multiway([0, 1, 2])
        assert served["elements"] == [int(x) for x in direct.elements]
        assert served["size"] == direct.size

    def test_metrics_shape(self, client):
        client.ping()
        metrics = client.metrics()
        assert metrics["requests_total"] >= 1
        assert "cache" in metrics and "served_lines" in metrics
        assert "latency_by_op" in metrics

    def test_pipelined_ids_match(self, server):
        # Raw protocol: several requests written before any response read.
        with socket.create_connection((server.host, server.port),
                                      timeout=30) as sock:
            f = sock.makefile("rwb")
            for request_id in range(5):
                f.write(json.dumps({"id": request_id, "op": "ping"})
                        .encode() + b"\n")
            f.flush()
            got = {json.loads(f.readline())["id"] for _ in range(5)}
        assert got == set(range(5))


class TestCaching:
    def test_repeat_query_hits_the_cache(self, spill):
        spill_dir, _ = spill
        with BackgroundServer(spill_dir) as bg:
            with ServeClient(bg.host, bg.port) as client:
                first = client.count([(0, 1)])
                before = client.metrics()["cache"]["hits"]
                assert client.count([(0, 1)]) == first
                assert client.metrics()["cache"]["hits"] == before + 1

    def test_cache_disabled_never_hits(self, spill):
        spill_dir, _ = spill
        with BackgroundServer(spill_dir, cache_entries=0) as bg:
            with ServeClient(bg.host, bg.port) as client:
                assert client.count([(0, 1)]) == client.count([(0, 1)])
                assert client.metrics()["cache"]["hits"] == 0


class TestErrors:
    def test_unknown_op_echoes_id(self, server):
        with socket.create_connection((server.host, server.port),
                                      timeout=30) as sock:
            f = sock.makefile("rwb")
            f.write(b'{"id": 42, "op": "explode"}\n')
            f.flush()
            response = json.loads(f.readline())
        assert response["id"] == 42
        assert response["ok"] is False
        assert response["error"]["code"] == "unknown-op"

    def test_malformed_json(self, server):
        with socket.create_connection((server.host, server.port),
                                      timeout=30) as sock:
            f = sock.makefile("rwb")
            f.write(b"this is not json\n")
            f.flush()
            response = json.loads(f.readline())
        assert response["error"]["code"] == "bad-request"

    def test_bad_params(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.request("topk", set=0, k=0)
        assert excinfo.value.code == "bad-request"

    def test_out_of_range_set(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.topk(N_SETS + 5, 2)
        assert excinfo.value.code == "bad-request"
        assert "out of range" in excinfo.value.message

    def test_timeout_when_engine_stalls(self, spill, monkeypatch):
        spill_dir, _ = spill
        monkeypatch.setattr(
            SpillQueryEngine, "members_batch",
            lambda self, queries: time.sleep(5) or [])
        with BackgroundServer(spill_dir, request_timeout=0.1) as bg:
            with ServeClient(bg.host, bg.port) as client:
                with pytest.raises(ServeError) as excinfo:
                    client.member(0, [1])
                assert excinfo.value.code == "timeout"
                assert client.ping() == "pong"    # connection survives

    def test_errors_counted_in_metrics(self, spill):
        spill_dir, _ = spill
        with BackgroundServer(spill_dir) as bg:
            with ServeClient(bg.host, bg.port) as client:
                with pytest.raises(ServeError):
                    client.request("bogus-op")
                assert client.metrics()["errors_by_code"]["unknown-op"] == 1


class TestConcurrencyAndBatching:
    def test_concurrent_clients_get_correct_answers(self, server, engine):
        pairs = [(i, j) for i in range(N_SETS) for j in range(i + 1, N_SETS)]
        expected = {p: int(c) for p, c in
                    zip(pairs, engine.count_pairs(np.array(pairs)))}
        failures = []

        def worker(worker_id):
            rng = np.random.default_rng(worker_id)
            try:
                with ServeClient(server.host, server.port) as client:
                    for _ in range(20):
                        p = pairs[int(rng.integers(len(pairs)))]
                        if client.count([p]) != [expected[p]]:
                            failures.append(p)
            except Exception as exc:  # noqa: BLE001 — surfaced via the list
                failures.append(exc)

        threads = [threading.Thread(target=worker, args=(w,)) for w in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert failures == []

    def test_batches_recorded(self, server):
        with ServeClient(server.host, server.port) as client:
            metrics = client.metrics()
        assert metrics["batches"] >= 1
        assert metrics["batched_requests"] >= metrics["batches"]


class TestBatcherUnit:
    class StallingEngine:
        """Blocks each members_batch call on its own event (call n -> event n)."""

        def __init__(self, n_calls=8):
            self.events = [threading.Event() for _ in range(n_calls)]
            self._calls = 0

        def members_batch(self, queries):
            event = self.events[self._calls]
            self._calls += 1
            event.wait(timeout=2)      # bounded so a leaked call cannot hang
            return [np.zeros(0, dtype=bool) for _ in queries]

    def test_backpressure_rejects_when_full(self):
        async def scenario():
            engine = self.StallingEngine()
            batcher = RequestBatcher(engine, ServerMetrics(),
                                     max_batch=1, max_queue=2)
            batcher.start()
            futures = [batcher.submit("member", {"set": 0, "elements": []})]
            await asyncio.sleep(0.05)   # drain takes #0, stalls in executor
            futures += [batcher.submit("member", {"set": 0, "elements": []})
                        for _ in range(2)]
            with pytest.raises(QueueFullError):
                batcher.submit("member", {"set": 0, "elements": []})
            for event in engine.events:
                event.set()
            results = await asyncio.gather(*futures)
            assert all(len(r) == 0 for r in results)
            await batcher.stop()

        asyncio.run(scenario())

    def test_stop_fails_queued_requests(self):
        async def scenario():
            engine = self.StallingEngine()
            batcher = RequestBatcher(engine, ServerMetrics(),
                                     max_batch=1, max_queue=8)
            batcher.start()
            first = batcher.submit("member", {"set": 0, "elements": []})
            await asyncio.sleep(0.05)
            queued = batcher.submit("member", {"set": 0, "elements": []})
            engine.events[0].set()             # only the first call completes
            await first
            # `queued` is either still in the queue or in-flight in a
            # cancelled batch — stop() must fail it either way, never
            # leave it unresolved.
            await batcher.stop()
            with pytest.raises(ConnectionResetError):
                await queued
            await batcher.stop()               # idempotent

        asyncio.run(scenario())

    def test_one_bad_request_cannot_poison_a_batch(self, engine):
        async def scenario():
            batcher = RequestBatcher(engine, ServerMetrics(),
                                     max_batch=8, max_queue=8)
            batcher.start()
            # paused drain would be nicer, but same-tick submits coalesce:
            good = batcher.submit("count", {"pairs": [[0, 1]]})
            bad = batcher.submit("count", {"pairs": [[0, N_SETS + 9]]})
            good2 = batcher.submit("count", {"pairs": [[1, 2]]})
            assert await good == [int(engine.count_pairs([(0, 1)])[0])]
            with pytest.raises(IndexError):
                await bad
            assert await good2 == [int(engine.count_pairs([(1, 2)])[0])]
            await batcher.stop()

        asyncio.run(scenario())

    def test_invalid_limits_rejected(self, engine):
        with pytest.raises(ValueError):
            RequestBatcher(engine, ServerMetrics(), max_batch=0)
        with pytest.raises(ValueError):
            RequestBatcher(engine, ServerMetrics(), max_queue=0)


class TestLifecycle:
    def test_max_requests_shuts_down(self, spill):
        spill_dir, _ = spill
        with BackgroundServer(spill_dir, max_requests=3) as bg:
            with ServeClient(bg.host, bg.port) as client:
                for _ in range(3):
                    client.ping()
        assert bg.final_metrics is not None
        assert bg.final_metrics["requests_total"] == 3

    def test_startup_error_is_surfaced(self, tmp_path):
        with pytest.raises(Exception, match="manifest|No such file|spill"):
            BackgroundServer(tmp_path / "nonexistent").start()

    def test_stop_is_idempotent(self, spill):
        spill_dir, _ = spill
        bg = BackgroundServer(spill_dir).start()
        bg.stop()
        bg.stop()


class TestServeCli:
    @pytest.fixture(scope="class")
    def fimi_spill(self, tmp_path_factory):
        base = tmp_path_factory.mktemp("serve_cli")
        out = io.StringIO()
        assert main(["generate", str(base / "data.fimi"), "--kind", "density",
                     "--items", "40", "--density", "0.2",
                     "--total-items", "2000", "--seed", "5"], out=out) == 0
        out = io.StringIO()
        rc = main(["build-index", str(base / "data.fimi"),
                   str(base / "spill"), "--seed", "7"], out=out)
        assert rc == 0, out.getvalue()
        return base / "spill", out.getvalue()

    def test_build_index_artifact_is_servable(self, fimi_spill):
        spill_dir, output = fimi_spill
        assert "spill artifact" in output
        assert (spill_dir / "family.npz").exists()
        assert (spill_dir / "item_map.npy").exists()
        engine = SpillQueryEngine(ShardedCollection.from_spill(spill_dir))
        assert engine.stats()["n_sets"] == 40
        engine.close()

    def test_build_index_bad_budget(self, fimi_spill, tmp_path):
        spill_dir, _ = fimi_spill
        out = io.StringIO()
        rc = main(["build-index", str(spill_dir / "nope.fimi"),
                   str(tmp_path / "x"), "--memory-budget", "huge"], out=out)
        assert rc == 2 and "error:" in out.getvalue()

    def test_serve_and_query_round_trip(self, fimi_spill):
        spill_dir, _ = fimi_spill
        out = io.StringIO()
        result = {}

        def run_server():
            result["rc"] = main(
                ["serve", str(spill_dir), "--max-requests", "3"], out=out)

        thread = threading.Thread(target=run_server, daemon=True)
        thread.start()
        address = None
        deadline = time.monotonic() + 60
        while address is None and time.monotonic() < deadline:
            match = re.search(r"serving on ([\d.]+):(\d+)", out.getvalue())
            if match:
                address = f"{match.group(1)}:{match.group(2)}"
            else:
                time.sleep(0.02)
        assert address, "server never printed its address"

        query_out = io.StringIO()
        rc = main(["query", address, '{"op": "ping"}'], out=query_out)
        assert rc == 0 and query_out.getvalue().strip() == '"pong"'

        query_out = io.StringIO()
        rc = main(["query", address, '{"op": "count", "pairs": [[0, 1]]}'],
                  out=query_out)
        assert rc == 0
        assert isinstance(json.loads(query_out.getvalue())[0], int)

        query_out = io.StringIO()
        rc = main(["query", address, '{"op": "bogus"}'], out=query_out)
        assert rc == 1 and "unknown-op" in query_out.getvalue()

        thread.join(timeout=60)
        assert not thread.is_alive()
        assert result["rc"] == 0
        assert "served 3 requests" in out.getvalue()

    @pytest.mark.parametrize("argv, message", [
        (["query", "no-port", "{}"], "HOST:PORT"),
        (["query", "127.0.0.1:1", '{"op": "ping"}'], "cannot reach"),
        (["query", "127.0.0.1:1", "not json"], "not valid JSON"),
        (["query", "127.0.0.1:1", '["op"]'], 'object with an "op" key'),
    ])
    def test_query_argument_errors(self, argv, message):
        out = io.StringIO()
        assert main(argv, out=out) == 2
        assert message in out.getvalue()
