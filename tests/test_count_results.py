"""Property tests for the CountResult API: sparse/top-k vs the dense oracle.

The redesign's contract, pinned across every counting backend:

* a sparse result pruned at ``min_support`` filtered with
  ``frequent_pairs(ms)`` (``ms >= floor``) is **bit-identical** to the
  dense matrix computed first and filtered afterwards;
* a top-k result equals the dense ranking under the *descending count,
  ties ascending (i, j)* convention;
* both hold for batch, parallel and sharded engines, for byte and
  non-byte payload layouts, for tombstoned incremental artifacts, and in
  the empty / all-pruned edge cases.
"""

import numpy as np
import pytest

from repro.core.collection import BatmapCollection
from repro.core.config import BatmapConfig
from repro.core.plan import PlanFeatures, plan_counts, resolve_result_format
from repro.core.results import (
    CountResult,
    DenseCountResult,
    SparseCountResult,
    TopKCountResult,
    as_count_result,
    coalesce_coo,
)
from repro.core.sharded import ShardedCollection
from repro.mining.support import PairSupports
from tests.conftest import random_sets

UNIVERSE = 600


def dense_frequent(counts: np.ndarray, ms: int):
    """Oracle: threshold the strict upper triangle of a dense matrix."""
    iu, ju = np.triu_indices(counts.shape[0], k=1)
    values = counts[iu, ju]
    keep = values >= ms
    return iu[keep], ju[keep], values[keep]


def dense_top_k(counts: np.ndarray, k: int):
    """Oracle ranking: descending count, ties ascending (i, j), k entries."""
    iu, ju = np.triu_indices(counts.shape[0], k=1)
    values = counts[iu, ju]
    order = np.lexsort((ju, iu, -values))[:k]
    return [((int(iu[o]), int(ju[o])), int(values[o])) for o in order]


def assert_matches_dense(result, dense: np.ndarray, ms: int):
    ri, rj, rv = result.frequent_pairs(ms)
    oi, oj, ov = dense_frequent(dense, ms)
    assert np.array_equal(ri, oi)
    assert np.array_equal(rj, oj)
    assert np.array_equal(rv, ov)


@pytest.fixture
def skewed_sets(rng):
    """A few large sets among many small ones, so tile pruning bites."""
    sets = []
    for i in range(60):
        size = 200 if i % 9 == 0 else rng.integers(1, 12)
        sets.append(np.unique(rng.integers(0, UNIVERSE, size=size)))
    return sets


class TestBatchEngine:
    @pytest.mark.parametrize("ms", [0, 1, 3, 25])
    def test_sparse_matches_dense_filter(self, skewed_sets, ms):
        coll = BatmapCollection.build(skewed_sets, UNIVERSE, rng=3)
        dense = coll.count_all_pairs()
        result = coll.batch_counter().count_result(
            result_format="sparse", min_support=ms)
        assert isinstance(result, SparseCountResult)
        assert_matches_dense(result, dense, max(1, ms))
        if ms >= 25:
            assert result.stats["tiles_skipped"] > 0

    @pytest.mark.parametrize("k", [1, 5, 40, 10_000])
    def test_top_k_matches_dense_ranking(self, skewed_sets, k):
        coll = BatmapCollection.build(skewed_sets, UNIVERSE, rng=3)
        dense = coll.count_all_pairs()
        result = coll.batch_counter().count_result(top_k=k)
        assert isinstance(result, TopKCountResult)
        assert result.ranked() == dense_top_k(dense, k)

    def test_top_k_with_min_support_truncates(self, skewed_sets):
        coll = BatmapCollection.build(skewed_sets, UNIVERSE, rng=3)
        dense = coll.count_all_pairs()
        result = coll.batch_counter().count_result(top_k=30, min_support=4)
        want = [e for e in dense_top_k(dense, 30) if e[1] >= 4]
        assert result.ranked()[:len(want)] == want

    def test_diagonal_round_trips(self, skewed_sets):
        coll = BatmapCollection.build(skewed_sets, UNIVERSE, rng=3)
        dense = coll.count_all_pairs()
        result = coll.batch_counter().count_result(result_format="sparse")
        assert np.array_equal(result.diagonal(), np.diag(dense))

    def test_cross_rectangle_matches_dense(self, rng):
        sets = random_sets(rng, 30, UNIVERSE, max_size=120)
        coll = BatmapCollection.build(sets, UNIVERSE, rng=5)
        rows = np.arange(12)
        cols = np.arange(12, 30)
        dense = coll.batch_counter().count_cross(rows, cols)
        result = coll.batch_counter().count_cross_result(rows, cols)
        assert not result.symmetric
        ri, rj, rv = result.frequent_pairs(1)
        oi, oj = np.nonzero(dense >= 1)
        assert np.array_equal(ri, oi) and np.array_equal(rj, oj)
        assert np.array_equal(rv, dense[oi, oj])


class TestParallelEngine:
    def test_sparse_and_top_k_match_batch(self, skewed_sets):
        from repro.parallel.executor import ParallelPairCounter

        coll = BatmapCollection.build(skewed_sets, UNIVERSE, rng=3)
        dense = coll.count_all_pairs()
        with ParallelPairCounter(coll, workers=2) as counter:
            for ms in (0, 2, 25):
                assert_matches_dense(
                    counter.count_result(result_format="sparse", min_support=ms),
                    dense, max(1, ms))
            topk = counter.count_result(top_k=7)
        assert topk.ranked() == dense_top_k(dense, 7)


class TestShardedEngine:
    @pytest.mark.parametrize("workers_compute", [("host", None), ("parallel", 2)])
    def test_sparse_matches_dense_counts(self, tmp_path, rng, workers_compute):
        compute, workers = workers_compute
        sets = random_sets(rng, 80, UNIVERSE, max_size=150)
        sharded = ShardedCollection.build(
            sets, UNIVERSE, tmp_path / "spill", rng=7,
            memory_budget=512 << 10)
        from repro.parallel.sharded import ShardedPairCounter

        dense = ShardedPairCounter(sharded, compute="host").counts()
        counter = ShardedPairCounter(
            sharded, compute=compute, workers=workers,
            result_format="sparse", min_support=3)
        result = counter.count_result()
        assert_matches_dense(result, dense, 3)

    def test_tombstoned_artifact(self, tmp_path, rng):
        sets = random_sets(rng, 60, UNIVERSE, max_size=100)
        sharded = ShardedCollection.build(
            sets, UNIVERSE, tmp_path / "spill", rng=9,
            memory_budget=512 << 10)
        sharded.delete([0, 7, 33, 59])
        reloaded = ShardedCollection.from_spill(tmp_path / "spill")
        from repro.parallel.sharded import ShardedPairCounter

        dense = ShardedPairCounter(reloaded, compute="host").counts()
        counter = ShardedPairCounter(
            reloaded, compute="host", result_format="sparse", min_support=2)
        assert_matches_dense(counter.count_result(), dense, 2)
        topk = counter.count_result(top_k=9, min_support=None)
        assert topk.ranked() == dense_top_k(dense, 9)


class TestPayloadWidths:
    """Non-byte layouts route through the per-pair reference path."""

    @pytest.mark.parametrize("payload_bits", [5, 7])
    def test_sparse_matches_dense(self, rng, payload_bits):
        config = BatmapConfig(payload_bits=payload_bits)
        sets = random_sets(rng, 25, UNIVERSE, max_size=80)
        coll = BatmapCollection.build(sets, UNIVERSE, config=config, rng=11)
        dense = coll.count_all_pairs()
        result = coll.count_result(result_format="sparse", min_support=2)
        assert_matches_dense(result, dense, 2)
        topk = coll.count_result(top_k=5)
        assert topk.ranked() == dense_top_k(dense, 5)


class TestEdgeCases:
    def test_all_pruned_is_empty(self, rng):
        sets = random_sets(rng, 12, UNIVERSE, max_size=10)
        coll = BatmapCollection.build(sets, UNIVERSE, rng=1)
        result = coll.batch_counter().count_result(
            result_format="sparse", min_support=10_000)
        assert result.nnz == 0
        assert result.stats["tiles_skipped"] == result.stats["tiles_total"] > 0
        ri, rj, rv = result.frequent_pairs(10_000)
        assert ri.size == rj.size == rv.size == 0

    def test_disjoint_sets_sparse_empty(self):
        sets = [np.arange(0, 10), np.arange(100, 110), np.arange(300, 310)]
        coll = BatmapCollection.build(sets, UNIVERSE, rng=2)
        result = coll.batch_counter().count_result(result_format="sparse")
        assert result.nnz == 0                      # off-diagonal empty
        assert result.stored_entries == 3           # diagonal supports kept
        assert np.array_equal(result.diagonal(),
                              np.diag(coll.count_all_pairs()))

    def test_refuses_filter_below_floor(self, rng):
        sets = random_sets(rng, 10, UNIVERSE, max_size=60)
        coll = BatmapCollection.build(sets, UNIVERSE, rng=4)
        result = coll.batch_counter().count_result(
            result_format="sparse", min_support=5)
        with pytest.raises(ValueError):
            result.frequent_pairs(2)

    def test_merge_combines_partitions(self, rng):
        sets = random_sets(rng, 16, UNIVERSE, max_size=80)
        coll = BatmapCollection.build(sets, UNIVERSE, rng=6)
        dense = coll.count_all_pairs()
        full = coll.batch_counter().count_result(result_format="sparse")
        i, j, v = full.pairs()
        half = i.size // 2
        a = SparseCountResult(len(sets), rows=i[:half], cols=j[:half],
                              values=v[:half])
        b = SparseCountResult(len(sets), rows=i[half:], cols=j[half:],
                              values=v[half:])
        merged = a.merge(b)
        mi, mj, mv = merged.frequent_pairs(1)
        oi, oj, ov = dense_frequent(dense, 1)
        assert np.array_equal(mi, oi) and np.array_equal(mj, oj)
        assert np.array_equal(mv, ov)


class TestResultPrimitives:
    def test_coalesce_sums_duplicates_drops_zeros(self):
        rows, cols, values = coalesce_coo(
            np.array([3, 1, 3, 2]), np.array([4, 2, 4, 2]),
            np.array([1, 5, 2, 0]))
        assert rows.tolist() == [1, 3]
        assert cols.tolist() == [2, 4]
        assert values.tolist() == [5, 3]

    def test_dense_matrix_access_is_silent(self, rng):
        dense = DenseCountResult(np.zeros((4, 4), dtype=np.int64))
        dense.matrix()                               # oracle path: no warning

    def test_sparse_matrix_access_warns(self):
        sparse = SparseCountResult(
            4, rows=np.array([0]), cols=np.array([1]), values=np.array([2]))
        with pytest.deprecated_call():
            sparse.matrix()

    def test_as_count_result_wraps_and_passes_through(self):
        raw = np.zeros((3, 3), dtype=np.int64)
        wrapped = as_count_result(raw)
        assert isinstance(wrapped, DenseCountResult)
        assert as_count_result(wrapped) is wrapped

    def test_pair_supports_accepts_count_result(self, rng):
        sets = random_sets(rng, 10, UNIVERSE, max_size=60)
        coll = BatmapCollection.build(sets, UNIVERSE, rng=8)
        dense = coll.count_all_pairs()
        result = coll.batch_counter().count_result(result_format="sparse")
        supports = PairSupports(counts=result,
                                item_ids=np.arange(10, dtype=np.int64))
        for i in range(10):
            for j in range(10):
                assert supports.support(i, j) == dense[i, j]

    def test_plan_features_carry_format_and_floor(self, rng):
        sets = random_sets(rng, 10, UNIVERSE, max_size=40)
        coll = BatmapCollection.build(sets, UNIVERSE, rng=1)
        features = PlanFeatures.from_collection(
            coll, result_format="sparse", min_support=6)
        plan = plan_counts(features)
        assert plan.result_format == "sparse"
        assert plan.min_support == 6

    def test_auto_resolves_against_budget(self):
        # 100 sets -> 80 kB dense result: sparse under a smaller budget.
        assert resolve_result_format("auto", 100, None) == "dense"
        assert resolve_result_format("auto", 100, 1 << 20) == "dense"
        assert resolve_result_format("auto", 100, 40_000) == "sparse"

    def test_count_all_pairs_legacy_signature_unchanged(self, rng):
        sets = random_sets(rng, 8, UNIVERSE, max_size=30)
        coll = BatmapCollection.build(sets, UNIVERSE, rng=2)
        out = coll.count_all_pairs()
        assert isinstance(out, np.ndarray)           # deprecation shim intact
        assert not isinstance(out, CountResult)


class TestMinerIntegration:
    """End-to-end: sparse mining (repair included) equals dense-then-filter."""

    def _database(self, rng, n_items=70, n_txns=350):
        from repro.datasets.transactions import TransactionDatabase

        txns = [np.unique(rng.integers(0, n_items, size=rng.integers(2, 10)))
                for _ in range(n_txns)]
        return TransactionDatabase(
            transactions=[t for t in txns if t.size], n_items=n_items)

    @pytest.mark.parametrize("compute", ["host", "device"])
    def test_mine_sparse_matches_dense(self, rng, compute):
        from repro.mining.pair_mining import BatmapPairMiner

        db = self._database(rng)
        miner = BatmapPairMiner(compute=compute)
        dense = miner.mine(db, min_support=3, rng=1)
        sparse = miner.mine(db, min_support=3, rng=1, result_format="sparse")
        assert isinstance(sparse.supports.counts, SparseCountResult)
        assert (sparse.supports.frequent_pairs(3)
                == dense.supports.frequent_pairs(3))

    def test_mine_stream_sparse_matches_dense(self, tmp_path, rng):
        from repro.mining.pair_mining import BatmapPairMiner

        db = self._database(rng)
        path = tmp_path / "db.dat"
        path.write_text("\n".join(
            " ".join(str(i) for i in t) for t in db.transactions) + "\n")
        miner = BatmapPairMiner(compute="auto")
        dense = miner.mine_stream(path, min_support=3, rng=2,
                                  memory_budget="8M")
        sparse = miner.mine_stream(path, min_support=3, rng=2,
                                   memory_budget="8M", result_format="sparse")
        assert isinstance(sparse.supports.counts, SparseCountResult)
        assert (sparse.supports.frequent_pairs(3)
                == dense.supports.frequent_pairs(3))

    def test_serve_sparse_top_k_matches_dense(self, tmp_path, rng):
        from repro.serve.engine import SpillQueryEngine

        sets = random_sets(rng, 50, UNIVERSE, max_size=120)
        sharded = ShardedCollection.build(
            sets, UNIVERSE, tmp_path / "spill", rng=5,
            memory_budget=256 << 10)
        sharded.delete([3, 17])
        reloaded = ShardedCollection.from_spill(tmp_path / "spill")
        dense = SpillQueryEngine(reloaded)
        sparse = SpillQueryEngine(reloaded, result_format="sparse")
        requests = [(0, 1), (5, 10), (40, 47)]
        assert dense.top_k_batch(requests) == sparse.top_k_batch(requests)
