"""Spill-format version negotiation and v1 migration.

``tests/fixtures/spill_v1`` is a frozen artifact written by the version-1
manifest writer (before generations, tombstones and delta shards existed),
together with the exact sets it was built from and its expected count
matrix.  These tests pin the compatibility promise: v1 artifacts attach,
serve and accept appends unchanged (the first mutation re-commits them at
version 3 with checksums), and anything outside the supported versions
fails with :class:`~repro.core.errors.SpillFormatError` — never a KeyError
or a silently wrong attach.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import numpy as np
import pytest

from repro.core.errors import SpillFormatError
from repro.core.sharded import SUPPORTED_SPILL_VERSIONS, ShardedCollection
from repro.parallel.sharded import ShardedPairCounter
from repro.serve.engine import SpillQueryEngine

FIXTURES = Path(__file__).parent / "fixtures"
V1_DIR = FIXTURES / "spill_v1"


@pytest.fixture
def v1_spill(tmp_path) -> Path:
    """A writable copy of the frozen v1 artifact."""
    target = tmp_path / "spill_v1"
    shutil.copytree(V1_DIR, target)
    return target


def v1_sets() -> list:
    data = np.load(FIXTURES / "spill_v1_sets.npz")
    return [data[f"set_{k}"] for k in range(12)]


def expected_counts() -> np.ndarray:
    return np.load(FIXTURES / "spill_v1_expected_counts.npy")


class TestV1Attach:
    def test_attach_negotiates_generation_zero(self):
        sharded = ShardedCollection.from_spill(V1_DIR)
        assert sharded.generation == 0
        assert sharded.n_sets == 12
        assert sharded.tombstones.size == 0
        assert all(shard.kind == "base" for shard in sharded.shards)

    def test_v1_counts_match_frozen_expectation(self):
        sharded = ShardedCollection.from_spill(V1_DIR)
        counts = ShardedPairCounter(sharded, compute="batch").counts()
        np.testing.assert_array_equal(counts, expected_counts())

    def test_shard_attach_works(self):
        sharded = ShardedCollection.from_spill(V1_DIR)
        for s in range(sharded.n_shards):
            index = sharded.attach(s)
            assert index.widths.size == sharded.shards[s].n_sets

    def test_supported_versions_constant(self):
        assert SUPPORTED_SPILL_VERSIONS == (1, 2, 3)


class TestV1Serve:
    def test_engine_serves_v1(self):
        engine = SpillQueryEngine(ShardedCollection.from_spill(V1_DIR))
        counts = expected_counts()
        sets = v1_sets()
        pairs = np.array([[0, 1], [3, 7], [8, 11]], dtype=np.int64)
        np.testing.assert_array_equal(
            engine.count_pairs(pairs),
            counts[pairs[:, 0], pairs[:, 1]])
        member = engine.members(2, np.arange(96))
        np.testing.assert_array_equal(np.nonzero(member)[0], sets[2])
        stats = engine.stats()
        assert stats["generation"] == 0
        assert stats["n_tombstones"] == 0
        assert stats["artifact_token"].startswith("g0-")


class TestV1Migration:
    def test_append_to_v1_upgrades_manifest(self, v1_spill):
        sharded = ShardedCollection.from_spill(v1_spill)
        rng = np.random.default_rng(99)
        delta = [np.sort(rng.choice(96, size=9, replace=False))
                 for _ in range(3)]
        sharded.append(delta)
        manifest = json.loads((v1_spill / "manifest.json").read_text())
        assert manifest["version"] == 3
        assert manifest["generation"] == 1
        # The upgrade records checksums for every shard, old and new.
        assert manifest["checksums"] == "blake2b-128"
        assert all(set(entry["files"]) == {"words.npy", "offsets.npy",
                                           "widths.npy", "order.npy",
                                           "failed.npy"}
                   for entry in manifest["shards"])
        kinds = [entry["kind"] for entry in manifest["shards"]]
        assert kinds[:-1] == ["base"] * (len(kinds) - 1)
        assert kinds[-1] == "delta"

        # Counts over base + delta equal a from-scratch build with the
        # artifact's own (eager) family.
        from repro.core.collection import BatmapCollection
        from repro.core.config import DEFAULT_CONFIG

        reloaded = ShardedCollection.from_spill(v1_spill)
        counts = ShardedPairCounter(reloaded, compute="batch").counts()
        reference = BatmapCollection.build(
            v1_sets() + delta, 96,
            config=DEFAULT_CONFIG.with_(payload_bits=7),
            family=reloaded.family)
        np.testing.assert_array_equal(
            counts, reference.count_all_pairs(compute="batch"))

    def test_delete_on_v1_writes_tombstones(self, v1_spill):
        sharded = ShardedCollection.from_spill(v1_spill)
        sharded.delete([0, 5])
        assert sharded.n_sets == 10
        # v3 deletes write generational tombstone files recorded in the
        # manifest — never the legacy fixed name.
        manifest = json.loads((v1_spill / "manifest.json").read_text())
        tombstones_file = manifest["tombstones"]["file"]
        assert tombstones_file == "tombstones_0001.npy"
        assert (v1_spill / tombstones_file).exists()
        reloaded = ShardedCollection.from_spill(v1_spill)
        assert reloaded.generation == 1
        np.testing.assert_array_equal(reloaded.tombstones, [0, 5])
        counts = ShardedPairCounter(reloaded, compute="batch").counts()
        live = np.setdiff1d(np.arange(12), [0, 5])
        np.testing.assert_array_equal(
            counts, expected_counts()[np.ix_(live, live)])


def _corrupt(spill: Path, mutate) -> None:
    manifest = json.loads((spill / "manifest.json").read_text())
    mutate(manifest)
    (spill / "manifest.json").write_text(json.dumps(manifest))


class TestRejection:
    def test_unknown_version_raises_spill_format_error(self, v1_spill):
        _corrupt(v1_spill, lambda m: m.update(version=99))
        with pytest.raises(SpillFormatError, match="version"):
            ShardedCollection.from_spill(v1_spill)

    def test_corrupt_json_raises_spill_format_error(self, v1_spill):
        (v1_spill / "manifest.json").write_text("{not json")
        with pytest.raises(SpillFormatError):
            ShardedCollection.from_spill(v1_spill)

    def test_missing_field_raises_spill_format_error(self, v1_spill):
        _corrupt(v1_spill, lambda m: m.pop("r0"))
        with pytest.raises(SpillFormatError):
            ShardedCollection.from_spill(v1_spill)

    def test_missing_manifest_raises_spill_format_error(self, tmp_path):
        with pytest.raises(SpillFormatError):
            ShardedCollection.from_spill(tmp_path)

    def test_engine_surface_rejects_corrupt_spill(self, v1_spill):
        # The serving path goes through the same negotiation: a corrupt
        # artifact can never reach query execution.
        _corrupt(v1_spill, lambda m: m.update(version=99))
        with pytest.raises(SpillFormatError):
            SpillQueryEngine(ShardedCollection.from_spill(v1_spill))

    def test_server_startup_rejects_corrupt_spill(self, v1_spill):
        from repro.serve.server import BackgroundServer

        _corrupt(v1_spill, lambda m: m.update(version=99))
        server = BackgroundServer(v1_spill)
        with pytest.raises(SpillFormatError):
            server.start()
        server.stop()
