"""Unit tests for repro.utils.bits."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.bits import (
    ilog2,
    is_power_of_two,
    next_power_of_two,
    pack_bytes_to_words,
    popcount32,
    popcount_array,
    unpack_words_to_bytes,
)


class TestNextPowerOfTwo:
    def test_small_values(self):
        assert next_power_of_two(0) == 1
        assert next_power_of_two(1) == 1
        assert next_power_of_two(2) == 2
        assert next_power_of_two(3) == 4
        assert next_power_of_two(4) == 4
        assert next_power_of_two(5) == 8

    def test_large_value(self):
        assert next_power_of_two((1 << 40) + 1) == 1 << 41

    def test_exact_powers_unchanged(self):
        for k in range(20):
            assert next_power_of_two(1 << k) == 1 << k

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            next_power_of_two(-1)

    @given(st.integers(min_value=1, max_value=10**9))
    def test_property_bounds(self, n):
        p = next_power_of_two(n)
        assert is_power_of_two(p)
        assert p >= n
        assert p < 2 * n or n == 1


class TestIsPowerOfTwo:
    def test_powers(self):
        assert all(is_power_of_two(1 << k) for k in range(31))

    def test_non_powers(self):
        assert not is_power_of_two(0)
        assert not is_power_of_two(-4)
        assert not is_power_of_two(6)
        assert not is_power_of_two(12)


class TestIlog2:
    def test_values(self):
        assert ilog2(1) == 0
        assert ilog2(2) == 1
        assert ilog2(1024) == 10

    def test_rejects_non_power(self):
        with pytest.raises(ValueError):
            ilog2(3)
        with pytest.raises(ValueError):
            ilog2(0)


class TestPopcount:
    def test_single_values(self):
        assert popcount32(0) == 0
        assert popcount32(0xFFFFFFFF) == 32
        assert popcount32(0x80808080) == 4

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            popcount32(-1)
        with pytest.raises(ValueError):
            popcount32(1 << 32)

    def test_array_matches_scalar(self):
        rng = np.random.default_rng(0)
        words = rng.integers(0, 1 << 32, size=1000, dtype=np.uint32)
        got = popcount_array(words)
        expected = np.array([popcount32(int(w)) for w in words])
        assert np.array_equal(got, expected)

    def test_array_shape_preserved(self):
        words = np.zeros((3, 5), dtype=np.uint32)
        assert popcount_array(words).shape == (3, 5)


class TestPacking:
    def test_roundtrip(self):
        rng = np.random.default_rng(1)
        data = rng.integers(0, 256, size=64, dtype=np.uint8)
        assert np.array_equal(unpack_words_to_bytes(pack_bytes_to_words(data)), data)

    def test_byte_order_is_little_endian(self):
        data = np.array([0x01, 0x02, 0x03, 0x80], dtype=np.uint8)
        word = pack_bytes_to_words(data)[0]
        assert int(word) == 0x80030201

    def test_rejects_non_multiple_of_four(self):
        with pytest.raises(ValueError):
            pack_bytes_to_words(np.zeros(5, dtype=np.uint8))

    @given(st.lists(st.integers(0, 255), min_size=0,
                    max_size=64).filter(lambda v: len(v) % 4 == 0))
    def test_property_roundtrip(self, values):
        data = np.array(values, dtype=np.uint8)
        assert np.array_equal(unpack_words_to_bytes(pack_bytes_to_words(data)), data)
