"""Tests for the intersection baselines: merge, galloping, hash table, bitmap."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.bitmap import BitmapIndex, bitmap_intersection_size
from repro.baselines.hash_intersect import HashSet, intersection_size_hash
from repro.baselines.merge import (
    intersect_sorted,
    intersect_sorted_galloping,
    intersection_size_numpy,
    intersection_size_sorted,
)
from repro.core.intersection import exact_intersection_size


class TestMerge:
    def test_basic(self):
        assert intersect_sorted([1, 3, 5], [3, 4, 5]).tolist() == [3, 5]

    def test_disjoint(self):
        assert intersect_sorted([1, 2], [3, 4]).size == 0

    def test_empty_inputs(self):
        assert intersect_sorted([], [1, 2]).size == 0
        assert intersect_sorted([], []).size == 0

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            intersect_sorted([3, 1], [1, 2])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            intersect_sorted(np.zeros((2, 2)), [1])

    def test_size_wrappers_agree(self):
        a = np.arange(0, 100, 3)
        b = np.arange(0, 100, 5)
        expected = exact_intersection_size(a, b)
        assert intersection_size_sorted(a, b) == expected
        assert intersection_size_numpy(a, b) == expected

    @given(st.lists(st.integers(0, 300), max_size=100),
           st.lists(st.integers(0, 300), max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_property_matches_set_intersection(self, a, b):
        sa = np.unique(np.array(a, dtype=np.int64))
        sb = np.unique(np.array(b, dtype=np.int64))
        expected = sorted(set(a) & set(b))
        assert intersect_sorted(sa, sb).tolist() == expected
        assert intersect_sorted_galloping(sa, sb).tolist() == expected


class TestGalloping:
    def test_skewed_sizes(self):
        small = np.array([5, 500, 5000])
        large = np.arange(10_000)
        assert intersect_sorted_galloping(small, large).tolist() == [5, 500, 5000]

    def test_order_of_arguments_irrelevant(self):
        a = np.arange(0, 50, 2)
        b = np.arange(0, 50, 7)
        assert np.array_equal(intersect_sorted_galloping(a, b), intersect_sorted_galloping(b, a))


class TestHashSet:
    def test_membership(self):
        hs = HashSet([1, 5, 9])
        assert 5 in hs and 1 in hs and 9 in hs
        assert 2 not in hs
        assert len(hs) == 3

    def test_duplicates_collapsed(self):
        assert len(HashSet([7, 7, 7])) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            HashSet([-1, 2])

    def test_load_factor_validated(self):
        with pytest.raises(ValueError):
            HashSet([1], load_factor=0.99)

    def test_capacity_is_power_of_two_and_spacious(self):
        hs = HashSet(range(100))
        assert hs.capacity >= 200
        assert hs.capacity & (hs.capacity - 1) == 0

    def test_probe_counter_increases(self):
        hs = HashSet(range(50))
        before = hs.total_probes
        _ = 10 in hs
        assert hs.total_probes > before

    def test_intersection_size(self):
        assert intersection_size_hash(range(0, 60, 2), range(0, 60, 3)) == 10

    @given(st.lists(st.integers(0, 500), max_size=80), st.lists(st.integers(0, 500), max_size=80))
    @settings(max_examples=40, deadline=None)
    def test_property_matches_exact(self, a, b):
        assert (intersection_size_hash(a or [0], b or [1])
                == exact_intersection_size(a or [0], b or [1]))


class TestBitmapIndex:
    def test_round_trip_membership(self):
        idx = BitmapIndex.from_sets([[1, 33, 64], [0, 2]], universe_size=100)
        assert idx.contains(0, 33) and idx.contains(0, 64) and idx.contains(1, 0)
        assert not idx.contains(0, 2)
        assert not idx.contains(0, 1000)

    def test_set_size_popcount(self):
        idx = BitmapIndex.from_sets([range(0, 77)], universe_size=100)
        assert idx.set_size(0) == 77

    def test_intersection(self):
        idx = BitmapIndex.from_sets([range(0, 64, 2), range(0, 64, 3)], universe_size=64)
        assert idx.intersection_size(0, 1) == exact_intersection_size(
            range(0, 64, 2), range(0, 64, 3))

    def test_memory_is_dense_in_universe(self):
        # n * ceil(m/32) * 4 bytes regardless of how sparse the sets are
        idx = BitmapIndex.from_sets([[1], [2]], universe_size=10_000)
        assert idx.memory_bytes == 2 * ((10_000 + 31) // 32) * 4

    def test_out_of_range_rejected(self):
        idx = BitmapIndex(64, 1)
        with pytest.raises(ValueError):
            idx.set_elements(0, [64])

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            BitmapIndex(0, 3)
        with pytest.raises(ValueError):
            BitmapIndex(10, 0)

    def test_pairwise_counts_symmetric(self):
        rng = np.random.default_rng(0)
        sets = [rng.choice(200, size=s, replace=False) for s in (10, 50, 100)]
        idx = BitmapIndex.from_sets(sets, universe_size=200)
        matrix = idx.pairwise_counts()
        assert np.array_equal(matrix, matrix.T)
        for i in range(3):
            assert matrix[i, i] == len(sets[i])
            for j in range(i + 1, 3):
                assert matrix[i, j] == exact_intersection_size(sets[i], sets[j])

    def test_one_off_helper(self):
        assert bitmap_intersection_size([1, 2, 3], [2, 3, 4], 10) == 2

    @given(st.lists(st.integers(0, 255), max_size=60), st.lists(st.integers(0, 255), max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_property_matches_exact(self, a, b):
        assert bitmap_intersection_size(a, b, 256) == exact_intersection_size(a, b)
