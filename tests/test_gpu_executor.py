"""Tests for the kernel abstraction, launch validation, executor and timing model."""

import numpy as np
import pytest

from repro.core.errors import KernelLaunchError
from repro.gpu.device import GTX_285
from repro.gpu.executor import GpuSimulator
from repro.gpu.kernel import Kernel, WorkGroupContext
from repro.gpu.timing import (
    KernelStats,
    estimate_kernel_time,
    estimate_transfer_time,
)


class CopyKernel(Kernel):
    """Toy kernel: each work item copies one word from 'src' to 'dst'."""

    name = "copy"
    local_size = (4, 4)

    def run_group(self, ctx: WorkGroupContext) -> None:
        gx, gy = ctx.global_offset
        lx, ly = ctx.local_size
        rows = gx + np.arange(lx)
        cols = gy + np.arange(ly)
        width = ctx.num_groups[1] * ly
        flat = (rows[:, None] * width + cols[None, :]).ravel()
        values = ctx.read_global("src", flat)
        ctx.write_global("dst", flat, values)
        ctx.add_ops(flat.size)
        ctx.barrier()


class TestKernelValidation:
    def test_rejects_non_multiple_global_size(self):
        with pytest.raises(KernelLaunchError):
            CopyKernel().validate_launch((5, 4), GTX_285)

    def test_rejects_oversized_work_group(self):
        k = CopyKernel()
        k.local_size = (64, 64)
        with pytest.raises(KernelLaunchError):
            k.validate_launch((64, 64), GTX_285)

    def test_rejects_non_2d_or_non_positive(self):
        with pytest.raises(KernelLaunchError):
            CopyKernel().validate_launch((4,), GTX_285)
        with pytest.raises(KernelLaunchError):
            CopyKernel().validate_launch((0, 4), GTX_285)

    def test_accepts_valid_geometry(self):
        CopyKernel().validate_launch((16, 8), GTX_285)


class TestExecutor:
    def test_copy_kernel_copies(self):
        sim = GpuSimulator(GTX_285)
        src = np.arange(64, dtype=np.uint32)
        sim.upload("src", src)
        sim.allocate("dst", (64,), np.uint32)
        record = sim.launch(CopyKernel(), (8, 8))
        assert np.array_equal(sim.download("dst"), src)
        assert record.stats.work_groups == 4
        assert record.stats.work_items == 64
        assert record.stats.scalar_ops == 64
        assert record.stats.barriers == 4
        assert record.stats.global_bytes_read == 256
        assert record.stats.global_bytes_written == 256

    def test_transfer_accounting(self):
        sim = GpuSimulator(GTX_285)
        sim.upload("src", np.zeros(1024, dtype=np.uint32))
        assert sim.totals.host_to_device_bytes == 4096
        assert sim.totals.transfer_seconds > 0
        sim.download("src")
        assert sim.totals.device_to_host_bytes == 4096

    def test_records_accumulate(self):
        sim = GpuSimulator(GTX_285)
        sim.upload("src", np.zeros(64, dtype=np.uint32))
        sim.allocate("dst", (64,), np.uint32)
        sim.launch(CopyKernel(), (8, 8))
        sim.launch(CopyKernel(), (8, 8))
        assert sim.totals.launches == 2
        assert len(sim.records) == 2
        merged = sim.combined_stats()
        assert merged.work_groups == 8
        assert sim.achieved_bandwidth_bytes_per_second() > 0

    def test_device_seconds_positive_and_additive(self):
        sim = GpuSimulator(GTX_285)
        sim.upload("src", np.zeros(64, dtype=np.uint32))
        sim.allocate("dst", (64,), np.uint32)
        r1 = sim.launch(CopyKernel(), (8, 8))
        total_after_one = sim.totals.device_seconds
        r2 = sim.launch(CopyKernel(), (8, 8))
        assert r1.timing.device_seconds > 0
        assert sim.totals.device_seconds == pytest.approx(
            total_after_one + r2.timing.device_seconds)


class TestTimingModel:
    def test_memory_bound_kernel(self):
        stats = KernelStats(global_bytes_read=159_000_000, scalar_ops=1000,
                            global_read_transactions=100, ideal_read_transactions=100)
        timing = estimate_kernel_time(stats, GTX_285)
        assert timing.memory_seconds == pytest.approx(1e-3, rel=1e-3)
        assert timing.device_seconds >= timing.memory_seconds
        assert timing.memory_seconds > timing.compute_seconds

    def test_compute_bound_kernel(self):
        stats = KernelStats(global_bytes_read=1000, scalar_ops=10**9,
                            global_read_transactions=1, ideal_read_transactions=1)
        timing = estimate_kernel_time(stats, GTX_285)
        assert timing.compute_seconds > timing.memory_seconds

    def test_poor_coalescing_slows_memory(self):
        good = KernelStats(global_bytes_read=10**6,
                           global_read_transactions=100, ideal_read_transactions=100)
        bad = KernelStats(global_bytes_read=10**6,
                          global_read_transactions=1600, ideal_read_transactions=100)
        assert (estimate_kernel_time(bad, GTX_285).memory_seconds
                > estimate_kernel_time(good, GTX_285).memory_seconds)

    def test_transfer_time(self):
        assert estimate_transfer_time(5_000_000_000, GTX_285) == pytest.approx(1.0)
        assert estimate_transfer_time(0, GTX_285) == 0.0
        with pytest.raises(ValueError):
            estimate_transfer_time(-1, GTX_285)

    def test_stats_merge(self):
        a = KernelStats(global_bytes_read=10, scalar_ops=5, work_groups=1)
        b = KernelStats(global_bytes_written=20, barriers=2, work_groups=3)
        a.merge(b)
        assert a.global_bytes_total == 30
        assert a.work_groups == 4
        assert a.barriers == 2

    def test_empty_stats_efficiency_is_one(self):
        assert KernelStats().coalescing_efficiency == 1.0
