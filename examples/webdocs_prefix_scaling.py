#!/usr/bin/env python
"""WebDocs-style prefix scaling (the paper's Figure 10 scenario).

The WebDocs dataset's defining difficulty is that its vocabulary (number of
distinct items) keeps growing as more documents are read.  This example uses
the library's WebDocs surrogate to show how each miner copes as the prefix —
and with it the number of distinct items — grows.

Run with:  python examples/webdocs_prefix_scaling.py
"""

import time

from repro.baselines import AprioriMiner, FPGrowthMiner
from repro.datasets import generate_webdocs_like, vocabulary_growth
from repro.mining import BatmapPairMiner

PREFIXES = [30, 60, 120]
MIN_SUPPORT = 2


def main() -> None:
    base = generate_webdocs_like(max(PREFIXES), vocabulary_size=10_000,
                                 mean_length=40.0, rng=0)
    growth = dict(vocabulary_growth(base, PREFIXES))
    print("prefix  distinct-items")
    for size in PREFIXES:
        print(f"{size:6d}  {growth[size]:8d}")

    print("\nprefix |  apriori_s | fpgrowth_s | batmap_total_s | batmap_device_s | pairs")
    for size in PREFIXES:
        db, _ = base.prefix(size).filter_by_support(MIN_SUPPORT)

        start = time.perf_counter()
        apriori_pairs = AprioriMiner().mine_pairs(db.transactions, db.n_items, MIN_SUPPORT)
        t_apriori = time.perf_counter() - start

        start = time.perf_counter()
        fp_pairs = FPGrowthMiner().mine_pairs(db.transactions, db.n_items, MIN_SUPPORT)
        t_fp = time.perf_counter() - start

        report = BatmapPairMiner(tile_size=1024).mine(db, min_support=MIN_SUPPORT, rng=0)
        batmap_pairs = report.supports.frequent_pairs(MIN_SUPPORT)

        assert apriori_pairs == fp_pairs == batmap_pairs
        print(f"{size:6d} | {t_apriori:10.3f} | {t_fp:10.3f} | "
              f"{report.total_seconds:14.3f} | {report.counting_seconds:15.5f} | "
              f"{len(batmap_pairs):5d}")

    print("\n(all miners agree on every prefix ✓; batmap_device_s is the modelled GPU time)")


if __name__ == "__main__":
    main()
