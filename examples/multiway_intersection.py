#!/usr/bin/env python
"""Intersecting more than two sets — the extensions of the paper's Section V.

Two routes are demonstrated:

1. **d-of-(d+1) batmaps** — each element is stored in d of d+1 tables, which
   guarantees a position-aligned witness for any intersection of up to d
   sets (``repro.extensions.dofd1``);
2. **per-item membership probes** — with ordinary 2-of-3 batmaps, elements of
   the smallest set are probed against every other set's batmap
   (``repro.extensions.multiway``).

Run with:  python examples/multiway_intersection.py
"""

import numpy as np

from repro.core import BatmapCollection
from repro.extensions import (
    GeneralizedBatmap,
    GeneralizedBatmapFamily,
    multiway_intersection,
    multiway_intersection_size,
)


def main() -> None:
    rng = np.random.default_rng(11)
    universe = 5_000
    k = 4  # number of sets to intersect

    sets = [np.sort(rng.choice(universe, size=int(size), replace=False))
            for size in rng.integers(800, 2500, size=k)]
    exact = set(sets[0].tolist())
    for s in sets[1:]:
        exact &= set(s.tolist())
    print(f"{k} sets over a universe of {universe}; exact intersection size = {len(exact)}")

    # --- route 1: d-of-(d+1) batmaps with d = k -------------------------------
    family = GeneralizedBatmapFamily.create(universe, d=k, rng=0)
    gbatmaps = [GeneralizedBatmap.build(s, family) for s in sets]
    for bm in gbatmaps:
        bm.validate()
    size_dofd1 = multiway_intersection_size(gbatmaps)
    print(f"d-of-(d+1) batmaps ({k}-of-{k + 1})    : {size_dofd1}")

    # --- route 2: membership probes on standard 2-of-3 batmaps ----------------
    collection = BatmapCollection.build(sets, universe, rng=1)
    result = multiway_intersection(collection, list(range(k)))
    print(f"2-of-3 batmaps, per-item probing : {result.size} "
          f"(failed insertions involved: {len(result.failed_involved)})")

    assert size_dofd1 == len(exact)
    if not result.failed_involved:
        assert result.size == len(exact)
    print("both routes match the exact answer ✓")


if __name__ == "__main__":
    main()
