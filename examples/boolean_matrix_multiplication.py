#!/usr/bin/env python
"""Sparse boolean matrix multiplication and join-project queries with batmaps.

The paper's introduction motivates set intersection through two database
problems: boolean matrix products (does row i of M share a non-zero column
with column j of M'?) and join-project queries (π_{a,c}(R ⋈ S) with duplicate
elimination).  This example exercises both through the library's
``repro.matrix`` layer and checks every result against a dense reference.

Run with:  python examples/boolean_matrix_multiplication.py
"""

import numpy as np

from repro.matrix import (
    Relation,
    SparseBooleanMatrix,
    join_project,
    multiply_batmap,
    multiply_batmap_device,
    multiply_dense,
    multiply_merge,
)


def main() -> None:
    rng = np.random.default_rng(3)

    # --- boolean matrix product ----------------------------------------------
    a = SparseBooleanMatrix.random(60, 400, density=0.06, rng=rng)
    b = SparseBooleanMatrix.random(400, 45, density=0.06, rng=rng)
    print(f"M : {a.n_rows}x{a.n_cols}, {a.nnz} non-zeros")
    print(f"M': {b.n_rows}x{b.n_cols}, {b.nnz} non-zeros")

    reference = multiply_dense(a, b)
    via_merge = multiply_merge(a, b)
    via_batmap = multiply_batmap(a, b, rng=0)
    product_device, device_seconds = multiply_batmap_device(a, b, rng=0, tile_size=512)

    assert np.array_equal(via_merge, reference)
    assert np.array_equal(via_batmap, reference)
    assert np.array_equal(product_device, reference)
    nonzero_pairs = int(np.count_nonzero(reference))
    print(f"witness-count product verified across all 4 implementations ✓")
    print(f"  non-empty output cells : {nonzero_pairs} / {reference.size}")
    print(f"  modelled device time   : {device_seconds * 1e3:.3f} ms")

    # --- join-project ----------------------------------------------------------
    # R(author, paper), S(paper, venue): which (author, venue) pairs exist?
    n_authors, n_papers, n_venues = 40, 300, 12
    r_pairs = np.column_stack([rng.integers(0, n_authors, 500),
                               rng.integers(0, n_papers, 500)])
    s_pairs = np.column_stack([rng.integers(0, n_papers, 400),
                               rng.integers(0, n_venues, 400)])
    r = Relation(r_pairs, n_authors, n_papers)
    s = Relation(s_pairs, n_papers, n_venues)
    result_batmap = join_project(r, s, use_batmaps=True, rng=1)
    result_exact = join_project(r, s, use_batmaps=False)
    assert result_batmap == result_exact
    print(f"\njoin-project π(author,venue)(R ⋈ S): {len(result_batmap)} result tuples "
          f"(batmap == dense reference ✓)")


if __name__ == "__main__":
    main()
