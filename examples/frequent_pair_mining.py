#!/usr/bin/env python
"""Frequent pair mining: the paper's case study, end to end.

Generates a synthetic market-basket instance (the paper's generator: each of
``n`` items appears in a transaction with probability ``p`` until the target
instance size is reached), mines all frequent pairs with

* the batmap pipeline on the simulated GPU,
* FP-growth and Apriori (the paper's CPU competitors),

verifies that all three agree, and prints the phase breakdown and device
statistics the paper reports for its Figures 6 and 7.

Run with:  python examples/frequent_pair_mining.py
"""

import time

from repro.baselines import AprioriMiner, FPGrowthMiner
from repro.datasets import generate_density_instance
from repro.mining import BatmapPairMiner

N_ITEMS = 250
DENSITY = 0.05
TOTAL_ITEMS = 50_000
MIN_SUPPORT = 3


def main() -> None:
    db = generate_density_instance(N_ITEMS, DENSITY, TOTAL_ITEMS, rng=42)
    print(f"instance: {db.n_transactions} transactions, {db.n_items} items, "
          f"{db.total_items} occurrences, density {db.density:.3f}")

    # --- batmap pipeline on the simulated GTX 285 ----------------------------
    miner = BatmapPairMiner(tile_size=1024)
    report = miner.mine(db, min_support=MIN_SUPPORT, rng=0)
    pairs_batmap = report.supports.frequent_pairs(MIN_SUPPORT)
    print("\n[batmap/GPU-sim]")
    print(f"  preprocessing (host)   : {report.preprocess_seconds:8.3f} s")
    print(f"  pair counting (device) : {report.counting_seconds:8.5f} s (modelled)")
    print(f"  transfers (PCIe model) : {report.transfer_seconds:8.5f} s")
    print(f"  postprocessing (host)  : {report.postprocess_seconds:8.3f} s")
    print(f"  batmap buffer          : {report.batmap_bytes / 1024:8.1f} KiB")
    print(f"  device traffic         : {report.device_bytes / 1e6:8.2f} MB, "
          f"coalescing {report.coalescing_efficiency:.2f}")
    print(f"  failed insertions      : {report.failed_insertions}")
    print(f"  frequent pairs found   : {len(pairs_batmap)}")

    # --- CPU baselines --------------------------------------------------------
    start = time.perf_counter()
    pairs_fp = FPGrowthMiner().mine_pairs(db.transactions, db.n_items, MIN_SUPPORT)
    t_fp = time.perf_counter() - start
    start = time.perf_counter()
    pairs_apriori = AprioriMiner().mine_pairs(db.transactions, db.n_items, MIN_SUPPORT)
    t_apriori = time.perf_counter() - start
    print("\n[CPU baselines]")
    print(f"  FP-growth : {t_fp:6.3f} s, {len(pairs_fp)} pairs")
    print(f"  Apriori   : {t_apriori:6.3f} s, {len(pairs_apriori)} pairs")

    assert pairs_batmap == pairs_fp == pairs_apriori, "miners disagree!"
    print("\nall three miners report identical frequent pairs ✓")

    top = report.supports.top_k(5)
    print("\nmost frequent pairs:")
    for (i, j), support in top:
        print(f"  items ({i:4d}, {j:4d})  support {support}")


if __name__ == "__main__":
    main()
