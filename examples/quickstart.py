#!/usr/bin/env python
"""Quickstart: build batmaps for a few sets and count their intersections.

This touches the three layers of the library in ~40 lines:

1. the core data structure (``build_batmap`` / ``count_common``),
2. a shared-family collection of many sets (``BatmapCollection``),
3. the simulated-GPU pair-count kernel (``run_batmap_pair_counts``).

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import BatmapCollection, build_batmap, count_common, exact_intersection_size
from repro.core.hashing import HashFamily
from repro.core.config import BatmapConfig
from repro.kernels import run_batmap_pair_counts


def main() -> None:
    rng = np.random.default_rng(7)
    universe = 10_000  # element ids are transaction ids in {0, ..., m-1}

    # --- 1. two sets, one shared hash family, one intersection count --------
    config = BatmapConfig()
    family = HashFamily.create(universe, shift=config.shift_for_universe(universe), rng=0)
    set_a = np.sort(rng.choice(universe, size=1200, replace=False))
    set_b = np.sort(rng.choice(universe, size=800, replace=False))
    bm_a = build_batmap(set_a, universe, family=family)
    bm_b = build_batmap(set_b, universe, family=family)
    print(f"batmap A: {bm_a!r}")
    print(f"batmap B: {bm_b!r}")
    print(f"|A ∩ B| via batmaps : {count_common(bm_a, bm_b)}")
    print(f"|A ∩ B| exact       : {exact_intersection_size(set_a, set_b)}")

    # --- 2. many sets at once ------------------------------------------------
    sets = [np.sort(rng.choice(universe, size=int(s), replace=False))
            for s in rng.integers(100, 2000, size=12)]
    collection = BatmapCollection.build(sets, universe, rng=1)
    print(f"\ncollection of {len(collection)} sets, "
          f"{collection.memory_bytes / 1024:.1f} KiB of batmaps")
    print(f"|S_3 ∩ S_7| = {collection.count_pair(3, 7)}")

    # --- 3. every pairwise count through the simulated GPU kernel ------------
    result = run_batmap_pair_counts(collection, tile_size=512)
    print(f"\ndevice pass: {result.tiles} tile(s), "
          f"{result.total_device_bytes / 1e6:.2f} MB of global traffic, "
          f"modelled device time {result.device_seconds * 1e3:.3f} ms, "
          f"coalescing efficiency {result.coalescing_efficiency:.2f}")
    # result.counts is in width-sorted order; map one entry back:
    sorted_i, sorted_j = int(collection.rank[3]), int(collection.rank[7])
    print(f"device count for (3, 7): {result.counts[sorted_i, sorted_j]}")


if __name__ == "__main__":
    main()
